"""Acceptance tests for the future-work experiments (MP, LR, ST)."""

import numpy as np
import pytest

from repro.experiments import REGISTRY, fig_listranking, fig_multiprefix, fig_strides
from repro.simulator import toy_machine

SMALL = toy_machine(p=8, x=16, d=14)


class TestRegistryExtended:
    def test_future_work_registered(self):
        assert {"MP", "LR", "ST", "SB"} <= set(REGISTRY)
        assert len(REGISTRY) == 19


class TestMultiprefix:
    def test_crossover_shape(self):
        s = fig_multiprefix.run(machine=SMALL, n=8192,
                                n_keys_values=[2, 512, 8192])
        direct = s.columns["direct_simulated"]
        sorted_ = s.columns["sorted_simulated"]
        # Direct pays d*multiplicity: steep at concentrated keys, tiny at
        # spread keys; the sort stays within a bounded band, so direct
        # wins big once keys spread.  (The exact crossover point depends
        # on the machine; the J90-scale bench pins it.)
        assert direct[0] > 20 * direct[-1]
        assert direct[-1] < sorted_[-1] / 2

    def test_multiplicity_decreasing(self):
        s = fig_multiprefix.run(machine=SMALL, n=8192,
                                n_keys_values=[4, 64, 1024])
        mult = s.columns["max_multiplicity"]
        assert (np.diff(mult) < 0).all()


class TestListRanking:
    def test_bsp_underpredicts(self):
        s = fig_listranking.run(machine=SMALL, n_values=[1024, 4096])
        assert (s.columns["simulated"] > 3 * s.columns["bsp"]).all()
        assert np.allclose(s.columns["dxbsp"], s.columns["simulated"],
                           rtol=0.25)

    def test_round_profile_doubles(self):
        s = fig_listranking.run_round_profile(machine=SMALL, n=4096)
        cont = s.columns["tail_contention"]
        assert cont[-1] >= 4096 / 2
        assert (np.diff(cont) > 0).all()


class TestStrides:
    def test_prediction_matches_simulation(self):
        s = fig_strides.run(machine=SMALL, n=8192,
                            strides=[1, 4, 16, 128])
        assert np.allclose(s.columns["predicted"],
                           s.columns["interleaved_sim"], rtol=0.06)

    def test_hashing_flattens(self):
        s = fig_strides.run(machine=SMALL, n=8192,
                            strides=[1, 128])
        il = s.columns["interleaved_sim"]
        hashed = s.columns["hashed_sim"]
        assert il[-1] > 5 * il[0]
        assert hashed[-1] < 2 * hashed[0]

    def test_mains_print(self, capsys):
        for mod in (fig_strides,):
            out = mod.main()
            assert out
            assert capsys.readouterr().out


class TestSortBench:
    def test_distribution_ordering(self):
        from repro.experiments import fig_sortbench

        rows = fig_sortbench.run(machine=SMALL, n=8192, bits=16)
        by = {r[0]: r for r in rows}
        # BSP blind to distribution; simulator resolves the skew.
        assert len({r[2] for r in rows}) == 1
        assert by["uniform"][4] < by["ts-and r=2"][4]
        assert by["uniform"][1] < by["ts-and r=2"][1]  # hist contention
