"""Tests for the shared experiment runner (grid fan-out + memo cache)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import runner
from repro.experiments.runner import (
    cache_key,
    clear_cache,
    code_version,
    run_grid,
)
from repro.simulator import toy_machine


@pytest.fixture(autouse=True)
def _isolated_config(tmp_path, monkeypatch):
    """Snapshot process-wide runner config and point the cache at a
    throwaway directory so tests never touch the user's cache."""
    saved = dict(runner._config)
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    runner._config.update(
        {"parallel": None, "cache": None, "cache_dir": tmp_path / "cache"}
    )
    yield
    runner._config.clear()
    runner._config.update(saved)


def _square(x):
    return x * x


def _sim_point(machine, n, seed):
    from repro.simulator import simulate_scatter
    from repro.workloads import hotspot

    return simulate_scatter(machine, hotspot(n, 4, 1 << 12, seed=seed)).time


_CALLS = []


def _counting(x):
    _CALLS.append(x)
    return x + 1


class TestRunGrid:
    def test_results_aligned_with_points(self):
        res = run_grid(_square, [dict(x=i) for i in range(10)], cache=False)
        assert res == [i * i for i in range(10)]

    def test_empty_grid(self):
        assert run_grid(_square, [], cache=False) == []

    def test_parallel_matches_serial(self):
        points = [dict(machine=toy_machine(), n=50, seed=s)
                  for s in range(6)]
        serial = run_grid(_sim_point, points, parallel=1, cache=False)
        fanned = run_grid(_sim_point, points, parallel=2, cache=False)
        assert serial == fanned

    def test_cache_roundtrip_skips_execution(self):
        _CALLS.clear()
        points = [dict(x=i) for i in range(4)]
        first = run_grid(_counting, points)
        assert len(_CALLS) == 4
        second = run_grid(_counting, points)
        assert len(_CALLS) == 4  # every point served from disk
        assert first == second == [1, 2, 3, 4]

    def test_no_cache_reexecutes(self):
        _CALLS.clear()
        points = [dict(x=1)]
        run_grid(_counting, points, cache=False)
        run_grid(_counting, points, cache=False)
        assert len(_CALLS) == 2

    def test_partial_hits(self):
        _CALLS.clear()
        run_grid(_counting, [dict(x=1), dict(x=2)])
        run_grid(_counting, [dict(x=1), dict(x=2), dict(x=3)])
        assert _CALLS == [1, 2, 3]  # only the new point executed

    def test_clear_cache(self):
        run_grid(_square, [dict(x=5)])
        assert clear_cache() == 1
        assert clear_cache() == 0


class TestCacheKey:
    def test_distinct_kwargs_distinct_keys(self):
        assert cache_key(_square, {"x": 1}) != cache_key(_square, {"x": 2})

    def test_distinct_functions_distinct_keys(self):
        assert cache_key(_square, {"x": 1}) != cache_key(_counting, {"x": 1})

    def test_key_stable(self):
        assert cache_key(_square, {"x": 1}) == cache_key(_square, {"x": 1})

    def test_array_contents_keyed(self):
        a = {"addr": np.arange(100)}
        b = {"addr": np.arange(100)}
        c = {"addr": np.arange(100) + 1}
        assert cache_key(_square, a) == cache_key(_square, b)
        assert cache_key(_square, a) != cache_key(_square, c)

    def test_array_dtype_keyed(self):
        a = {"addr": np.arange(8, dtype=np.int64)}
        b = {"addr": np.arange(8, dtype=np.int32)}
        assert cache_key(_square, a) != cache_key(_square, b)

    def test_machine_params_keyed(self):
        base = toy_machine()
        assert cache_key(_square, {"m": base}) != \
            cache_key(_square, {"m": base.with_(d=base.d + 1)})
        assert cache_key(_square, {"m": base}) == \
            cache_key(_square, {"m": toy_machine()})

    def test_numeric_width_unified(self):
        # A point built with np.int64(7) and one built with plain 7 are
        # the same computation — the key must agree.
        assert cache_key(_square, {"x": np.int64(7)}) == \
            cache_key(_square, {"x": 7})

    def test_code_version_in_key(self):
        key = cache_key(_square, {"x": 1})
        assert isinstance(code_version(), str) and len(code_version()) == 16
        runner._code_version = "0" * 16
        try:
            assert cache_key(_square, {"x": 1}) != key
        finally:
            runner._code_version = None


class TestConfigure:
    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ParameterError):
            runner.configure(parallel=0)

    def test_env_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert runner._parallelism(None) == 3

    def test_env_cache_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not runner._cache_enabled(None)


class TestRunExperiments:
    def test_serial_outcomes_in_order(self):
        outcomes = runner.run_experiments(["T1", "FN"], parallel=1)
        assert [o.exp_id for o in outcomes] == ["T1", "FN"]
        assert "Cray C90" in outcomes[0].output
        assert all(o.seconds >= 0 for o in outcomes)

    def test_parallel_outcomes_in_order(self):
        outcomes = runner.run_experiments(["T1", "FN"], parallel=2)
        assert [o.exp_id for o in outcomes] == ["T1", "FN"]
        assert "Cray C90" in outcomes[0].output
