"""Tests for the shared experiment runner (grid fan-out + memo cache)."""

import multiprocessing
import os
import time
import types

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments import runner
from repro.experiments.runner import (
    cache_key,
    clear_cache,
    code_version,
    run_grid,
)
from repro.simulator import toy_machine


@pytest.fixture(autouse=True)
def _isolated_config(tmp_path, monkeypatch):
    """Snapshot process-wide runner config and point the cache at a
    throwaway directory so tests never touch the user's cache."""
    saved = dict(runner._config)
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    runner._config.update(
        {"parallel": None, "cache": None, "cache_dir": tmp_path / "cache"}
    )
    yield
    runner._config.clear()
    runner._config.update(saved)


def _square(x):
    return x * x


def _sim_point(machine, n, seed):
    from repro.simulator import simulate_scatter
    from repro.workloads import hotspot

    return simulate_scatter(machine, hotspot(n, 4, 1 << 12, seed=seed)).time


_CALLS = []


def _counting(x):
    _CALLS.append(x)
    return x + 1


class TestRunGrid:
    def test_results_aligned_with_points(self):
        res = run_grid(_square, [dict(x=i) for i in range(10)], cache=False)
        assert res == [i * i for i in range(10)]

    def test_empty_grid(self):
        assert run_grid(_square, [], cache=False) == []

    def test_parallel_matches_serial(self):
        points = [dict(machine=toy_machine(), n=50, seed=s)
                  for s in range(6)]
        serial = run_grid(_sim_point, points, parallel=1, cache=False)
        fanned = run_grid(_sim_point, points, parallel=2, cache=False)
        assert serial == fanned

    def test_cache_roundtrip_skips_execution(self):
        _CALLS.clear()
        points = [dict(x=i) for i in range(4)]
        first = run_grid(_counting, points)
        assert len(_CALLS) == 4
        second = run_grid(_counting, points)
        assert len(_CALLS) == 4  # every point served from disk
        assert first == second == [1, 2, 3, 4]

    def test_no_cache_reexecutes(self):
        _CALLS.clear()
        points = [dict(x=1)]
        run_grid(_counting, points, cache=False)
        run_grid(_counting, points, cache=False)
        assert len(_CALLS) == 2

    def test_partial_hits(self):
        _CALLS.clear()
        run_grid(_counting, [dict(x=1), dict(x=2)])
        run_grid(_counting, [dict(x=1), dict(x=2), dict(x=3)])
        assert _CALLS == [1, 2, 3]  # only the new point executed

    def test_clear_cache(self):
        run_grid(_square, [dict(x=5)])
        assert clear_cache() == 1
        assert clear_cache() == 0


class TestCacheKey:
    def test_distinct_kwargs_distinct_keys(self):
        assert cache_key(_square, {"x": 1}) != cache_key(_square, {"x": 2})

    def test_distinct_functions_distinct_keys(self):
        assert cache_key(_square, {"x": 1}) != cache_key(_counting, {"x": 1})

    def test_key_stable(self):
        assert cache_key(_square, {"x": 1}) == cache_key(_square, {"x": 1})

    def test_array_contents_keyed(self):
        a = {"addr": np.arange(100)}
        b = {"addr": np.arange(100)}
        c = {"addr": np.arange(100) + 1}
        assert cache_key(_square, a) == cache_key(_square, b)
        assert cache_key(_square, a) != cache_key(_square, c)

    def test_array_dtype_keyed(self):
        a = {"addr": np.arange(8, dtype=np.int64)}
        b = {"addr": np.arange(8, dtype=np.int32)}
        assert cache_key(_square, a) != cache_key(_square, b)

    def test_machine_params_keyed(self):
        base = toy_machine()
        assert cache_key(_square, {"m": base}) != \
            cache_key(_square, {"m": base.with_(d=base.d + 1)})
        assert cache_key(_square, {"m": base}) == \
            cache_key(_square, {"m": toy_machine()})

    def test_numeric_width_unified(self):
        # A point built with np.int64(7) and one built with plain 7 are
        # the same computation — the key must agree.
        assert cache_key(_square, {"x": np.int64(7)}) == \
            cache_key(_square, {"x": 7})

    def test_extreme_numerics_hash_not_raise(self):
        # Request-derived values reach this hasher: an int beyond float
        # range (float() overflows) or a non-finite float (int() fails)
        # must key, not raise — the serving tier hashes before it
        # validates, and a hostile request must cost one 400, not a
        # crashed server.
        extremes = [10 ** 400, -(10 ** 400), float("inf"),
                    float("-inf"), float("nan")]
        keys = [cache_key(_square, {"x": v}) for v in extremes]
        assert len(set(keys)) == len(extremes)
        assert keys == [cache_key(_square, {"x": v}) for v in extremes]

    def test_code_version_in_key(self):
        key = cache_key(_square, {"x": 1})
        assert isinstance(code_version(), str) and len(code_version()) == 16
        runner._code_version = "0" * 16
        try:
            assert cache_key(_square, {"x": 1}) != key
        finally:
            runner._code_version = None


class TestConfigure:
    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ParameterError):
            runner.configure(parallel=0)

    def test_env_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert runner._parallelism(None) == 3

    def test_env_cache_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not runner._cache_enabled(None)


def _in_worker() -> bool:
    """True inside a process-pool worker (not the pytest process)."""
    return multiprocessing.parent_process() is not None


def _flaky_raise(x):
    """Raises on the pooled attempt, succeeds on the serial retry."""
    if _in_worker():
        raise ValueError("pooled attempt fails")
    return x * 3


def _flaky_exit(x):
    """Kills its worker process (simulated OOM/segfault); the serial
    in-process retry succeeds."""
    if _in_worker():
        os._exit(17)
    return x + 100


def _flaky_slow(x):
    """Hangs in the pool (only for x == 0); fast on the serial retry."""
    if _in_worker() and x == 0:
        time.sleep(2.0)
    return -x


def _always_raise(x):
    raise ValueError("bad point")


def _typename(x):
    return type(x).__name__


def _array_sum(addresses, scale):
    # Workers receive a live ndarray view regardless of how it shipped.
    assert isinstance(addresses, np.ndarray)
    return float(addresses.sum()) * scale


class _RecordingFuture:
    """Synchronous stand-in for a pool future, recording the timeout."""

    def __init__(self, pool, fn, args, kwargs):
        self._pool = pool
        self._fn, self._args, self._kwargs = fn, args, kwargs

    def result(self, timeout=None):
        self._pool.timeouts.append(timeout)
        return self._fn(*self._args, **self._kwargs)

    def cancel(self):
        pass


class _RecordingPool:
    """In-process ProcessPoolExecutor stand-in: runs submissions
    synchronously and records what run_grid handed it."""

    def __init__(self):
        self.submissions = []
        self.timeouts = []

    def submit(self, fn, *args, **kwargs):
        self.submissions.append((fn, args, kwargs))
        return _RecordingFuture(self, fn, args, kwargs)

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestSharedMemoryShipping:
    BIG = runner._SHM_MIN_BYTES // 8 + 16  # int64 elements, over threshold

    def test_publish_attach_round_trip(self):
        session = runner._ShmSession()
        arr = np.arange(self.BIG, dtype=np.int64)
        try:
            adapted = session.adapt({"addresses": arr, "scale": 2})
            handle = adapted["addresses"]
            assert isinstance(handle, runner._ShmHandle)
            assert adapted["scale"] == 2
            resolved = runner._resolve(adapted)
            np.testing.assert_array_equal(resolved["addresses"], arr)
            assert not resolved["addresses"].flags.writeable
        finally:
            session.close()
            # Drop the view before the cached attachment: a live
            # frombuffer view holds the buffer export, so clearing the
            # cache first would make the segment's close() raise.
            resolved = None
            runner._attached.clear()

    def test_small_and_object_arrays_stay_inline(self):
        session = runner._ShmSession()
        small = np.arange(8, dtype=np.int64)
        objs = np.array([object()] * self.BIG, dtype=object)
        try:
            adapted = session.adapt({"a": small, "b": objs})
            assert adapted["a"] is small
            assert adapted["b"] is objs
        finally:
            session.close()

    def test_shared_array_published_once(self):
        runner.reset_grid_stats()
        session = runner._ShmSession()
        arr = np.arange(self.BIG, dtype=np.int64)
        try:
            h1 = session.adapt({"addresses": arr})["addresses"]
            h2 = session.adapt({"addresses": arr})["addresses"]
            assert h1.name == h2.name
            assert len(session._segments) == 1
            # bytes_shipped counts per point reference, not per segment.
            stats = runner.grid_stats()
            assert stats.shm_hits == 2
            assert stats.bytes_shipped == 2 * arr.nbytes
        finally:
            session.close()

    def test_pooled_grid_ships_via_shm(self):
        runner.reset_grid_stats()
        arr = np.arange(self.BIG, dtype=np.int64)
        points = [dict(addresses=arr, scale=s) for s in range(6)]
        res = run_grid(_array_sum, points, parallel=2, cache=False)
        assert res == [float(arr.sum()) * s for s in range(6)]
        stats = runner.grid_stats()
        assert stats.shm_hits == 6
        assert stats.bytes_shipped == 6 * arr.nbytes
        # Normal exit unlinks every segment.
        if runner._SHM_DIR.is_dir():
            assert not list(runner._SHM_DIR.glob(runner._SHM_PREFIX + "*"))

    def test_attach_cache_evicts_unlinked_segments(self):
        """Regression: the worker-side attach cache must not grow one
        entry per pool generation — entries whose parent segment was
        unlinked are evicted on the next cache miss."""
        import gc

        arr = np.arange(self.BIG, dtype=np.int64)
        session1 = runner._ShmSession()
        adapted1 = session1.adapt({"addresses": arr})
        stale_name = adapted1["addresses"].name
        resolved1 = runner._resolve(adapted1)
        assert stale_name in runner._attached
        del resolved1
        gc.collect()
        session1.close()                      # parent unlinks generation 1
        session2 = runner._ShmSession()
        adapted2 = session2.adapt({"addresses": arr * 2})
        try:
            resolved2 = runner._resolve(adapted2)  # miss -> eviction sweep
            assert stale_name not in runner._attached
            assert adapted2["addresses"].name in runner._attached
            np.testing.assert_array_equal(resolved2["addresses"], arr * 2)
            del resolved2
            gc.collect()
        finally:
            session2.close()
            runner._evict_stale_attachments()
            runner._attached.clear()

    def test_attach_cache_keeps_entries_with_live_views(self):
        """A stale entry whose buffer is still referenced (BufferError
        on close) survives the sweep instead of crashing it."""
        import gc

        arr = np.arange(self.BIG, dtype=np.int64)
        session1 = runner._ShmSession()
        adapted1 = session1.adapt({"addresses": arr})
        stale_name = adapted1["addresses"].name
        resolved1 = runner._resolve(adapted1)   # view stays live
        session1.close()                        # unlinked, but mapped
        session2 = runner._ShmSession()
        adapted2 = session2.adapt({"addresses": arr + 1})
        try:
            resolved2 = runner._resolve(adapted2)
            assert stale_name in runner._attached   # pinned by the view
            np.testing.assert_array_equal(resolved1["addresses"], arr)
            np.testing.assert_array_equal(resolved2["addresses"], arr + 1)
            del resolved1, resolved2
            gc.collect()
            # with the views gone the next sweep reclaims it
            assert runner._evict_stale_attachments() >= 1
            assert stale_name not in runner._attached
        finally:
            session2.close()
            runner._evict_stale_attachments()
            runner._attached.clear()

    def test_serial_grid_ships_nothing(self):
        runner.reset_grid_stats()
        arr = np.arange(self.BIG, dtype=np.int64)
        res = run_grid(_array_sum, [dict(addresses=arr, scale=3)],
                       cache=False)
        assert res == [float(arr.sum()) * 3]
        assert runner.grid_stats().shm_hits == 0


class TestChunkedSubmission:
    def _pooled(self, monkeypatch, n_points, parallel, timeout=None):
        pool = _RecordingPool()
        monkeypatch.setattr(runner, "_pool", lambda *a, **k: pool)
        points = [dict(x=i) for i in range(n_points)]
        res = run_grid(_square, points, parallel=parallel, cache=False,
                       timeout=timeout)
        assert res == [i * i for i in range(n_points)]
        return pool

    def test_misses_submitted_in_chunks(self, monkeypatch):
        # 32 points over 2 workers x 4 chunks each -> chunks of 4.
        pool = self._pooled(monkeypatch, n_points=32, parallel=2)
        assert len(pool.submissions) == 8
        for fn, args, _kwargs in pool.submissions:
            assert fn is runner._run_chunk
            assert len(args[1]) == 4

    def test_small_grids_keep_one_point_chunks(self, monkeypatch):
        # Fewer points than worker slots: chunk size stays 1, so the
        # retry/timeout granularity of small sweeps is unchanged.
        pool = self._pooled(monkeypatch, n_points=3, parallel=2)
        assert len(pool.submissions) == 3

    def test_timeout_scales_with_chunk_length(self, monkeypatch):
        pool = self._pooled(monkeypatch, n_points=32, parallel=2,
                            timeout=0.5)
        assert pool.timeouts == [pytest.approx(0.5 * 4)] * 8

    def test_no_timeout_waits_forever(self, monkeypatch):
        pool = self._pooled(monkeypatch, n_points=32, parallel=2)
        assert pool.timeouts == [None] * 8

    def test_chunk_timeout_fails_whole_chunk(self):
        # A real pool with a sleeping chunk: every point of the
        # timed-out chunk is counted and retried serially.
        runner.reset_grid_stats()
        points = [dict(x=i) for i in range(2)]
        res = run_grid(_flaky_slow, points, parallel=2, cache=False,
                       timeout=0.4)
        assert res == [0, -1]
        stats = runner.grid_stats()
        assert stats.timeouts >= 1
        assert stats.retries == stats.timeouts


class TestWallClockSplit:
    def test_pool_and_cache_seconds_accumulate(self):
        runner.reset_grid_stats()
        points = [dict(x=i) for i in range(3)]
        run_grid(_square, points)
        first = runner.grid_stats()
        assert first.pool_seconds > 0
        assert first.cache_seconds >= 0
        run_grid(_square, points)  # all hits this time
        second = runner.grid_stats()
        assert second.cache_seconds > first.cache_seconds
        assert second.cache_hits == 3

    def test_cache_off_still_times_pool(self):
        runner.reset_grid_stats()
        run_grid(_square, [dict(x=2)], cache=False)
        stats = runner.grid_stats()
        assert stats.pool_seconds > 0


class TestFaultTolerance:
    def test_raising_worker_retried_serially(self):
        runner.reset_grid_stats()
        points = [dict(x=i) for i in range(3)]
        res = run_grid(_flaky_raise, points, parallel=2, cache=False)
        assert res == [0, 3, 6]
        assert runner.grid_stats().retries == 3

    def test_killed_worker_breaks_pool_but_not_grid(self):
        # os._exit in a worker poisons every outstanding future
        # (BrokenProcessPool); all points must still come back, via the
        # serial retry pass.
        runner.reset_grid_stats()
        points = [dict(x=i) for i in range(4)]
        res = run_grid(_flaky_exit, points, parallel=2, cache=False)
        assert res == [100, 101, 102, 103]
        assert runner.grid_stats().retries == 4

    def test_timeout_abandons_point_and_retries(self):
        runner.reset_grid_stats()
        points = [dict(x=0), dict(x=1)]
        res = run_grid(_flaky_slow, points, parallel=2, cache=False,
                       timeout=0.2)
        assert res == [0, -1]
        stats = runner.grid_stats()
        assert stats.timeouts == 1
        assert stats.retries == 1

    def test_serial_retry_failure_propagates(self):
        with pytest.raises(ValueError):
            run_grid(_always_raise, [dict(x=1)], parallel=2, cache=False)

    def test_serial_path_unaffected(self):
        with pytest.raises(ValueError):
            run_grid(_always_raise, [dict(x=1)], parallel=1, cache=False)


class TestCacheRobustness:
    def test_corrupt_entry_quarantined_and_recomputed(self):
        runner.reset_grid_stats()
        key = cache_key(_square, {"x": 9})
        root = runner.cache_dir()
        root.mkdir(parents=True, exist_ok=True)
        (root / f"{key}.pkl").write_bytes(b"this is not a pickle")
        assert run_grid(_square, [dict(x=9)]) == [81]
        stats = runner.grid_stats()
        assert stats.quarantined == 1
        assert stats.cache_misses == 1
        assert (root / f"{key}.corrupt").exists()
        # The recomputed value was re-published and is now served.
        assert run_grid(_square, [dict(x=9)]) == [81]
        assert runner.grid_stats().cache_hits == 1

    def test_clear_cache_sweeps_corrupt_and_tmp(self, tmp_path,
                                                monkeypatch):
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        monkeypatch.setattr(runner, "_SHM_DIR", shm_dir)
        root = runner.cache_dir()
        root.mkdir(parents=True, exist_ok=True)
        run_grid(_square, [dict(x=5)])                        # one .pkl
        (root / "deadbeef.corrupt").write_bytes(b"x")         # quarantined
        (root / ".deadbeef.123.tmp").write_bytes(b"x")        # orphaned tmp
        (shm_dir / "repro_shm_42_0").write_bytes(b"x")        # orphaned shm
        (shm_dir / "other_seg").write_bytes(b"x")             # not ours
        assert clear_cache() == 4
        assert clear_cache() == 0
        assert list(root.iterdir()) == []
        # Foreign segments are never touched by the sweep.
        assert [p.name for p in shm_dir.iterdir()] == ["other_seg"]

    def test_clear_cache_sweeps_shm_without_cache_dir(self, tmp_path,
                                                     monkeypatch):
        # Orphaned segments are collected even before any cache exists
        # (the abnormal exit may have happened on a cache-off run).
        shm_dir = tmp_path / "shm"
        shm_dir.mkdir()
        monkeypatch.setattr(runner, "_SHM_DIR", shm_dir)
        (shm_dir / "repro_shm_42_0").write_bytes(b"x")
        assert not runner.cache_dir().is_dir()
        assert clear_cache() == 1

    def test_list_tuple_keys_distinct(self):
        # Regression: lists and tuples used to hash under the same tag,
        # so {"x": [1, 2]} and {"x": (1, 2)} shared a memo entry.
        assert cache_key(_square, {"x": [1, 2]}) != \
            cache_key(_square, {"x": (1, 2)})

    def test_list_tuple_no_cache_collision(self):
        first = run_grid(_typename, [dict(x=[1, 2])])
        second = run_grid(_typename, [dict(x=(1, 2))])
        assert first == ["list"]
        assert second == ["tuple"]  # pre-fix: served "list" from cache


_FUSED_RUNS = []


class _TimesTenFuser:
    """``grid_fuse`` adapter for :func:`_fusable` (one fused pass per
    compatible group, per-point results identical to ``fn(**point)``)."""

    @staticmethod
    def key(point):
        return point["group"]

    @staticmethod
    def run(points):
        _FUSED_RUNS.append(len(points))
        return [p["x"] * 10 for p in points]


def _fusable(x, group="g"):
    return x * 10


_fusable.grid_fuse = _TimesTenFuser()


class _BrokenFuser:
    @staticmethod
    def key(point):
        return "g"

    @staticmethod
    def run(points):
        raise RuntimeError("fused pass broke")


def _fusable_broken(x):
    return x - 1


_fusable_broken.grid_fuse = _BrokenFuser()


class TestGridFusion:
    def test_serial_fused_matches_per_point(self):
        runner.reset_grid_stats()
        _FUSED_RUNS.clear()
        points = [dict(x=i, group="g") for i in range(5)]
        res = run_grid(_fusable, points, cache=False)
        assert res == [i * 10 for i in range(5)]
        assert _FUSED_RUNS == [5]  # one fused pass, not five calls
        stats = runner.grid_stats()
        assert stats.fused_points == 5
        assert stats.fused_seconds > 0

    def test_fuse_false_forces_per_point(self):
        runner.reset_grid_stats()
        _FUSED_RUNS.clear()
        points = [dict(x=i, group="g") for i in range(4)]
        res = run_grid(_fusable, points, cache=False, fuse=False)
        assert res == [i * 10 for i in range(4)]
        assert _FUSED_RUNS == []
        assert runner.grid_stats().fused_points == 0

    def test_incompatible_keys_split_groups_and_singles(self):
        # Two fusable groups, one key=None point and one singleton key:
        # only the >= 2 groups fuse, everything else runs per point.
        runner.reset_grid_stats()
        _FUSED_RUNS.clear()
        points = [dict(x=0, group="a"), dict(x=1, group="b"),
                  dict(x=2, group="a"), dict(x=3, group=None),
                  dict(x=4, group="b"), dict(x=5, group="c")]
        res = run_grid(_fusable, points, cache=False)
        assert res == [0, 10, 20, 30, 40, 50]
        assert sorted(_FUSED_RUNS) == [2, 2]
        assert runner.grid_stats().fused_points == 4

    def test_broken_fused_pass_falls_back_per_point(self):
        runner.reset_grid_stats()
        res = run_grid(_fusable_broken, [dict(x=i) for i in range(3)],
                       cache=False)
        assert res == [-1, 0, 1]
        stats = runner.grid_stats()
        assert stats.fused_points == 0
        assert stats.retries == 3

    def test_pooled_fused_dispatch(self):
        # Two groups over two workers: each fused group is one pooled
        # task (counted worker-side via the returned elapsed time).
        runner.reset_grid_stats()
        points = [dict(x=i, group="a" if i < 3 else "b")
                  for i in range(6)]
        res = run_grid(_fusable, points, parallel=2, cache=False)
        assert res == [i * 10 for i in range(6)]
        stats = runner.grid_stats()
        assert stats.fused_points == 6
        assert stats.fused_seconds > 0

    def test_fused_results_cached_per_point(self):
        # The fused pass must populate the same per-point memo entries
        # the unfused path reads: fuse on, then fuse off, zero misses.
        runner.reset_grid_stats()
        points = [dict(x=i, group="g") for i in range(4)]
        first = run_grid(_fusable, points)
        assert runner.grid_stats().fused_points == 4
        _FUSED_RUNS.clear()
        second = run_grid(_fusable, points, fuse=False)
        assert second == first
        assert _FUSED_RUNS == []
        stats = runner.grid_stats()
        assert stats.cache_hits == 4
        assert stats.cache_misses == 4


class TestDedupe:
    def test_duplicates_collapsed_with_cache(self):
        _CALLS.clear()
        runner.reset_grid_stats()
        points = [dict(x=1), dict(x=1), dict(x=2), dict(x=1)]
        res = run_grid(_counting, points)
        assert res == [2, 2, 3, 2]
        assert _CALLS == [1, 2]  # duplicates never executed
        stats = runner.grid_stats()
        assert stats.points == 4
        assert stats.dedup_collapsed == 2
        assert (stats.cache_hits, stats.cache_misses) == (0, 2)

    def test_duplicate_of_cache_hit_collapsed(self):
        run_grid(_counting, [dict(x=5)])
        runner.reset_grid_stats()
        res = run_grid(_counting, [dict(x=5), dict(x=5)])
        assert res == [6, 6]
        stats = runner.grid_stats()
        # hits + misses + collapsed partitions the submission.
        assert stats.cache_hits == 1
        assert stats.dedup_collapsed == 1
        assert stats.cache_misses == 0

    def test_cache_off_disables_dedupe(self):
        # Repeat points without a cache may be intentional timing
        # probes: no keys are computed, every occurrence runs.
        _CALLS.clear()
        runner.reset_grid_stats()
        run_grid(_counting, [dict(x=7), dict(x=7)], cache=False)
        assert _CALLS == [7, 7]
        assert runner.grid_stats().dedup_collapsed == 0


class TestGridStats:
    def test_hits_misses_counted(self):
        runner.reset_grid_stats()
        points = [dict(x=i) for i in range(3)]
        run_grid(_square, points)
        stats = runner.grid_stats()
        assert (stats.points, stats.cache_hits, stats.cache_misses) == \
            (3, 0, 3)
        run_grid(_square, points)
        stats = runner.grid_stats()
        assert (stats.points, stats.cache_hits, stats.cache_misses) == \
            (6, 3, 3)

    def test_cache_off_counts_no_hits(self):
        runner.reset_grid_stats()
        run_grid(_square, [dict(x=1)], cache=False)
        stats = runner.grid_stats()
        assert (stats.points, stats.cache_hits, stats.cache_misses) == \
            (1, 0, 0)

    def test_reset_returns_snapshot(self):
        runner.reset_grid_stats()
        run_grid(_square, [dict(x=1)], cache=False)
        snapshot = runner.reset_grid_stats()
        assert snapshot.points == 1
        assert runner.grid_stats().points == 0

    def test_as_dict_round_trip(self):
        stats = runner.GridStats(points=3, retries=1)
        assert stats.as_dict()["points"] == 3
        assert stats.as_dict()["retries"] == 1


class TestEnvParsing:
    def test_env_parallel_zero_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert runner._parallelism(None) == 1

    def test_env_parallel_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        assert runner._parallelism(None) == 1

    def test_env_parallel_negative_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "-3")
        assert runner._parallelism(None) == 1


class TestRunExperiments:
    def test_serial_outcomes_in_order(self):
        outcomes = runner.run_experiments(["T1", "FN"], parallel=1)
        assert [o.exp_id for o in outcomes] == ["T1", "FN"]
        assert "Cray C90" in outcomes[0].output
        assert all(o.seconds >= 0 for o in outcomes)

    def test_parallel_outcomes_in_order(self):
        outcomes = runner.run_experiments(["T1", "FN"], parallel=2)
        assert [o.exp_id for o in outcomes] == ["T1", "FN"]
        assert "Cray C90" in outcomes[0].output


def _stub_main():
    print("debug: knee at 512")
    print("report body")
    return "report body"


def _stub_main_crashy():
    """Takes down its pool worker; succeeds on the serial rerun."""
    if _in_worker():
        os._exit(5)
    return _stub_main()


class TestCapturedStdout:
    @pytest.fixture
    def _stub_registry(self, monkeypatch):
        import repro.experiments as exps

        monkeypatch.setitem(
            exps.REGISTRY, "STUB", types.SimpleNamespace(main=_stub_main)
        )

    def test_stray_prints_survive_capture(self, _stub_registry):
        # Regression: _run_experiment used to redirect stdout into a
        # buffer and then drop it — stray debug prints vanished.
        outcome = runner._run_experiment("STUB")
        assert outcome.output == "report body"
        assert "debug: knee at 512" in outcome.captured
        assert outcome.stray_output == "debug: knee at 512"

    def test_report_not_duplicated_in_stray(self, _stub_registry):
        outcome = runner._run_experiment("STUB")
        assert outcome.stray_output.count("report body") == 0

    def test_stray_empty_for_clean_experiment(self):
        outcome = runner._run_experiment("T1")
        assert outcome.stray_output == ""
        assert outcome.captured.strip() == outcome.output.strip()

    def test_cli_surfaces_stray_output(self, _stub_registry, capsys):
        from repro.experiments.__main__ import main

        assert main(["STUB"]) == 0
        out = capsys.readouterr().out
        assert "--- captured stdout (STUB) ---" in out
        assert "debug: knee at 512" in out

    def test_crashed_experiment_rerun_serially(self, monkeypatch):
        # Inject a worker crash: the stub experiment kills its pool
        # worker; --all must still produce every outcome, with the
        # crashed experiment rerun serially and its retry recorded.
        import repro.experiments as exps

        monkeypatch.setitem(
            exps.REGISTRY, "STUB",
            types.SimpleNamespace(main=_stub_main_crashy),
        )
        outcomes = runner.run_experiments(["T1", "STUB"], parallel=2)
        assert [o.exp_id for o in outcomes] == ["T1", "STUB"]
        assert outcomes[1].output == "report body"
        assert outcomes[1].retries == 1
        # T1's future may or may not have been poisoned by the broken
        # pool (timing); either way its output must be intact.
        assert "Cray C90" in outcomes[0].output
