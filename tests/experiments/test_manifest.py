"""Tests for run manifests (schema, validation, CLI --json export)."""

import json

import pytest

from repro.errors import ParameterError
from repro.experiments import RunManifest, runner, validate_manifest
from repro.experiments.manifest import (
    MANIFEST_SCHEMA,
    SCHEMA_VERSION,
    write_manifest,
)
from repro.experiments.runner import ExperimentOutcome, GridStats


@pytest.fixture(autouse=True)
def _isolated_config(tmp_path):
    saved = dict(runner._config)
    runner._config.update(
        {"parallel": None, "cache": None, "cache_dir": tmp_path / "cache"}
    )
    yield
    runner._config.clear()
    runner._config.update(saved)


def _outcome(**overrides) -> ExperimentOutcome:
    base = dict(
        exp_id="E1", output="table", seconds=1.25,
        stats=GridStats(points=17, cache_hits=3, cache_misses=14),
    )
    base.update(overrides)
    return ExperimentOutcome(**base)


class TestRunManifest:
    def test_from_outcome_fields(self):
        m = RunManifest.from_outcome(_outcome(), parallel=4)
        assert m.exp_id == "E1"
        assert m.seconds == 1.25
        assert (m.points, m.cache_hits, m.cache_misses) == (17, 3, 14)
        assert m.parallel == 4
        assert m.cache_enabled is True
        assert m.schema_version == SCHEMA_VERSION
        assert m.code_version == runner.code_version()
        assert m.machine["name"] == "Cray J90"
        assert m.seed == 1995
        assert m.n == 64 * 1024

    def test_from_outcome_validates(self):
        validate_manifest(RunManifest.from_outcome(_outcome()).to_dict())

    def test_json_round_trip_validates(self):
        m = RunManifest.from_outcome(_outcome(retries=1))
        data = json.loads(m.to_json())
        validate_manifest(data)
        assert data["experiment_retries"] == 1

    def test_write_manifest_path_and_content(self, tmp_path):
        path = write_manifest(RunManifest.from_outcome(_outcome()), tmp_path)
        assert path == tmp_path / "E1.json"
        validate_manifest(json.loads(path.read_text()))

    def test_v2_shm_and_timing_fields(self):
        # Schema v2: shared-memory traffic plus the pool/cache
        # wall-clock split ride along from GridStats.
        m = RunManifest.from_outcome(_outcome(stats=GridStats(
            points=4, cache_hits=1, cache_misses=3,
            bytes_shipped=1 << 20, shm_hits=3,
            pool_seconds=0.5, cache_seconds=0.125,
        )))
        assert (m.bytes_shipped, m.shm_hits) == (1 << 20, 3)
        assert (m.pool_seconds, m.cache_seconds) == (0.5, 0.125)
        validate_manifest(m.to_dict())

    def test_v3_fusion_fields(self):
        # Schema v3: grid-fusion accounting — collapsed duplicates,
        # fused point count, fused wall-clock bucket.
        m = RunManifest.from_outcome(_outcome(stats=GridStats(
            points=9, cache_hits=1, cache_misses=6,
            dedup_collapsed=2, fused_points=6, fused_seconds=0.25,
        )))
        assert m.schema_version == SCHEMA_VERSION == 3
        assert (m.dedup_collapsed, m.fused_points) == (2, 6)
        assert m.fused_seconds == 0.25
        validate_manifest(m.to_dict())

    def test_negative_fusion_counter_rejected(self):
        data = RunManifest.from_outcome(_outcome()).to_dict()
        data["fused_points"] = -1
        with pytest.raises(ParameterError, match="'fused_points'"):
            validate_manifest(data)


class TestValidateManifest:
    def _valid(self) -> dict:
        return RunManifest.from_outcome(_outcome()).to_dict()

    def test_accepts_valid(self):
        validate_manifest(self._valid())

    def test_missing_field_rejected(self):
        data = self._valid()
        del data["seed"]
        with pytest.raises(ParameterError, match="missing field 'seed'"):
            validate_manifest(data)

    def test_wrong_type_rejected(self):
        data = self._valid()
        data["seconds"] = "fast"
        with pytest.raises(ParameterError, match="'seconds'"):
            validate_manifest(data)

    def test_bool_not_accepted_as_int(self):
        data = self._valid()
        data["points"] = True  # bool is an int subclass; must reject
        with pytest.raises(ParameterError, match="'points'"):
            validate_manifest(data)

    def test_int_not_accepted_as_bool(self):
        data = self._valid()
        data["cache_enabled"] = 1
        with pytest.raises(ParameterError, match="'cache_enabled'"):
            validate_manifest(data)

    def test_int_accepted_as_float(self):
        # JSON round-trips whole floats as ints.
        data = self._valid()
        data["seconds"] = 2
        validate_manifest(data)

    def test_unknown_field_rejected(self):
        data = self._valid()
        data["extra"] = 1
        with pytest.raises(ParameterError, match="unknown field 'extra'"):
            validate_manifest(data)

    def test_negative_counter_rejected(self):
        data = self._valid()
        data["retries"] = -1
        with pytest.raises(ParameterError, match="'retries'"):
            validate_manifest(data)

    def test_negative_shm_counter_rejected(self):
        data = self._valid()
        data["shm_hits"] = -2
        with pytest.raises(ParameterError, match="'shm_hits'"):
            validate_manifest(data)

    def test_schema_version_mismatch_rejected(self):
        data = self._valid()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ParameterError, match="schema_version"):
            validate_manifest(data)

    def test_all_problems_reported_together(self):
        data = self._valid()
        del data["seed"]
        data["points"] = -2
        data["bogus"] = 0
        with pytest.raises(ParameterError) as exc:
            validate_manifest(data)
        msg = str(exc.value)
        assert "seed" in msg and "points" in msg and "bogus" in msg

    def test_schema_covers_dataclass(self):
        # Schema drift guard: every manifest field is schema-checked.
        assert set(MANIFEST_SCHEMA) == set(self._valid())


class TestCliJson:
    def test_json_flag_writes_valid_manifests(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "manifests"
        assert main(["T1", "FN", "--json", str(out_dir)]) == 0
        for exp_id in ("T1", "FN"):
            data = json.loads((out_dir / f"{exp_id}.json").read_text())
            validate_manifest(data)
            assert data["exp_id"] == exp_id
            assert data["parallel"] == 1
            assert data["cache_enabled"] is True
        # FN sweeps a 3-point grid; a fresh cache means 3 misses.
        fn = json.loads((out_dir / "FN.json").read_text())
        assert fn["points"] == 3
        assert fn["cache_misses"] == 3

    def test_json_records_cache_hits_on_rerun(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "manifests"
        assert main(["FN", "--json", str(out_dir)]) == 0
        assert main(["FN", "--json", str(out_dir)]) == 0
        data = json.loads((out_dir / "FN.json").read_text())
        validate_manifest(data)
        assert data["cache_hits"] == 3
        assert data["cache_misses"] == 0

    def test_json_respects_no_cache(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "manifests"
        assert main(["T1", "--no-cache", "--json", str(out_dir)]) == 0
        data = json.loads((out_dir / "T1.json").read_text())
        assert data["cache_enabled"] is False
