"""Every experiment module runs (at reduced size) and reproduces the
paper's qualitative shape.  These are the repo-level acceptance tests for
the per-experiment index in DESIGN.md."""

import numpy as np
import pytest

from repro.experiments import (
    REGISTRY,
    exp1_hotspot,
    exp2_multihot,
    exp3_entropy,
    fig1_motivation,
    fig10_binary_search,
    fig11_random_perm,
    fig12_spmv,
    fig_connected_components,
    fig_emulation,
    fig_expansion,
    fig_modulemap,
    fig_network,
    table1_machines,
    table3_hashcost,
)
from repro.simulator import toy_machine

SMALL = toy_machine(p=8, x=16, d=14)  # j90-flavoured but tiny & pow2 banks


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(REGISTRY) == 19
        for mod in REGISTRY.values():
            assert hasattr(mod, "main")


class TestTable1:
    def test_rows(self):
        rows = table1_machines.run()
        assert len(rows) >= 5
        names = [r[0] for r in rows]
        assert "Cray C90" in names and "Cray J90" in names
        for _, p, banks, x, d, _ in rows:
            assert banks == pytest.approx(x * p)
            assert x > 1  # the table's thesis

    def test_main_prints(self, capsys):
        out = table1_machines.main()
        assert "Cray C90" in out
        assert capsys.readouterr().out.strip() == out.strip()


class TestExp1:
    def test_shape(self):
        s = exp1_hotspot.run(machine=SMALL, n=8192,
                             contentions=[1, 64, 2048, 8192])
        bsp, dx, sim = s.columns["bsp"], s.columns["dxbsp"], s.columns["simulated"]
        # BSP flat at low k; (d,x)-BSP rises ~d/g x above it at k=n.
        assert bsp[0] == bsp[1]
        assert dx[-1] / bsp[-1] > SMALL.d / SMALL.g * 0.8
        # Model tracks simulation everywhere.
        assert np.allclose(dx, sim, rtol=0.3)
        # Monotone in k.
        assert (np.diff(dx) >= -1e-9).all()


class TestExp2:
    def test_more_hot_locations_faster(self):
        s = exp2_multihot.run_vs_nhot(machine=SMALL, n=8192,
                                      n_hots=[1, 16, 256])
        sim = s.columns["simulated"]
        assert sim[0] > sim[-1]

    def test_higher_fraction_slower(self):
        s = exp2_multihot.run_vs_fraction(machine=SMALL, n=8192,
                                          fractions=[0.0, 0.5, 1.0])
        sim = s.columns["simulated"]
        assert sim[-1] > sim[0]
        dx = s.columns["dxbsp"]
        assert np.allclose(dx, sim, rtol=0.35)


class TestExp3:
    def test_shape(self):
        s = exp3_entropy.run(machine=SMALL, n=8192, bits=16, max_rounds=6)
        ent = s.columns["entropy_bits"]
        sim = s.columns["simulated"]
        # Entropy falls, time eventually rises.
        assert ent[0] > ent[-1]
        assert sim[-1] > sim[0]
        # Model tracks simulation across the family.
        assert np.allclose(s.columns["dxbsp"], sim, rtol=0.35)


class TestFigExpansion:
    def test_more_banks_never_much_worse(self):
        s = fig_expansion.run(machine=SMALL, n=8192, expansions=[1, 4, 16, 64])
        sim = s.columns["simulated"]
        assert sim[0] > sim[-1]  # expansion helps overall

    def test_helps_beyond_d(self):
        # The paper's point: improvements continue past x = d/g (= 14
        # here; powers of two keep the hash family applicable).
        s = fig_expansion.run(machine=SMALL, n=8192,
                              expansions=[16, 64])
        sim = s.columns["simulated"]
        assert sim[1] < sim[0]


class TestFigNetwork:
    def test_version_c_blows_up(self):
        rows = fig_network.run(n=8192)
        ratios = {r[0].split(" ")[0]: r[5] for r in rows}
        assert ratios["a"] < 1.5
        assert ratios["c"] > 2.0
        assert ratios["c"] > ratios["b"] >= ratios["a"] * 0.9

    def test_section_prediction_tracks(self):
        for row in fig_network.run(n=8192):
            _, n, bank_pred, sect_pred, sim, _ = row
            assert sim == pytest.approx(sect_pred, rel=0.25)


class TestTable3:
    def test_ordering(self):
        # Large enough that per-element work dominates NumPy dispatch.
        rows = table3_hashcost.run(n=1 << 22, repeats=3)
        ns = [r[3] for r in rows]
        ops = [r[2] for r in rows]
        assert ops == [2, 4, 6]
        # Evaluation cost increases with degree (generous tolerance: the
        # NumPy dispatch overhead compresses small differences).
        assert ns[2] > ns[0]

    def test_relative_costs(self):
        rows = table3_hashcost.run(n=1 << 22, repeats=3)
        rel = [r[4] for r in rows]
        assert rel[0] == pytest.approx(1.0)
        assert rel[2] >= rel[1] * 0.8


class TestFigModulemap:
    def test_ratio_decays(self):
        s = fig_modulemap.run(machine=SMALL, n=4096,
                              expansions=[2, 16, 128], trials=2)
        r = s.columns["ratio_h1"]
        assert (r >= 1.0 - 1e-9).all()
        assert r[-1] < r[0] + 0.05
        assert r[-1] < 1.5


class TestFigEmulation:
    def test_overhead_decreases_with_expansion(self):
        s = fig_emulation.run(machine=SMALL, n_ops=8192, k=4,
                              expansions=[1, 4, 16, 64])
        b = s.columns["overhead_bound"]
        assert (np.diff(b) <= 1e-9).all()
        m = s.columns["measured"]
        assert m[-1] < m[0]

    def test_measured_within_bound(self):
        s = fig_emulation.run(machine=SMALL, n_ops=8192, k=4,
                              expansions=[2, 32])
        assert (s.columns["measured"] <=
                s.columns["overhead_bound"] * 1.1).all()


class TestFig1:
    def test_shape(self):
        s = fig1_motivation.run(machine=SMALL, n_vertices=2048,
                                star_sizes=[4, 256, 2048],
                                n_random_edges=2048)
        sim = s.columns["simulated"]
        bsp = s.columns["bsp"]
        # Hot patterns leave BSP behind.
        assert sim[-1] / bsp[-1] > 3
        assert np.allclose(s.columns["dxbsp"], sim, rtol=0.3)


class TestFig10:
    def test_qrqw_wins_mid_range(self):
        s = fig10_binary_search.run(machine=SMALL, m=4096,
                                    n_values=[256, 1024, 4096])
        q = s.columns["qrqw_simulated"]
        e = s.columns["erew_simulated"]
        assert (q[:2] < e[:2]).all()


class TestFig11:
    def test_qrqw_wins(self):
        s = fig11_random_perm.run(machine=SMALL, n_values=[1024, 8192])
        assert (s.columns["qrqw_simulated"]
                < s.columns["erew_simulated"]).all()


class TestFig12:
    def test_shape(self):
        s = fig12_spmv.run(machine=SMALL, n_rows=2048, n_cols=2048,
                           nnz_per_row=4, dense_lens=[1, 256, 2048])
        sim = s.columns["simulated"]
        bsp = s.columns["bsp"]
        dx = s.columns["dxbsp"]
        assert sim[-1] > 2 * sim[0]          # dense column hurts
        assert bsp[-1] < 0.6 * sim[-1]       # BSP misses it
        assert np.allclose(dx, sim, rtol=0.25)  # (d,x)-BSP tracks


class TestFigCC:
    def test_star_is_worst_for_bsp(self):
        rows = fig_connected_components.run(machine=SMALL, n=1024)
        by_name = {r.graph: r for r in rows}
        assert by_name["star"].max_contention >= 1023 / 2
        assert by_name["star"].simulated_time / by_name["star"].bsp_time > \
            by_name["grid"].simulated_time / by_name["grid"].bsp_time

    def test_phase_breakdown_present(self):
        rows = fig_connected_components.run(machine=SMALL, n=512)
        for r in rows:
            assert r.phase_times
            total_phases = sum(r.phase_times.values())
            assert total_phases == pytest.approx(r.simulated_time, rel=1e-6)


class TestMains:
    # main() uses the full paper-scale defaults; exercise it only for the
    # cheap experiments (the rest are covered through run() above).
    @pytest.mark.parametrize("key", ["T1", "FN", "T3"])
    def test_main_runs_and_prints(self, key, capsys):
        out = REGISTRY[key].main()
        assert out
        assert capsys.readouterr().out
