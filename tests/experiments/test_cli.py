"""Tests for the `python -m repro.experiments` runner."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F12" in out

    def test_run_one(self, capsys):
        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "=== T1" in out
        assert "Cray C90" in out

    def test_unknown_id_errors(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["NOPE"])
        assert exc.value.code != 0
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_ids(self, capsys):
        assert main(["T1", "FN"]) == 0
        out = capsys.readouterr().out
        assert "=== T1" in out and "=== FN" in out
