"""Tests for the `python -m repro.experiments` runner."""

import pytest

from repro.experiments import runner
from repro.experiments.__main__ import main


@pytest.fixture(autouse=True)
def _isolated_config(tmp_path):
    """main() calls runner.configure (process-wide); snapshot/restore so
    flag tests don't leak into each other, and sandbox the cache dir."""
    saved = dict(runner._config)
    runner._config.update(
        {"parallel": None, "cache": None, "cache_dir": tmp_path / "cache"}
    )
    yield
    runner._config.clear()
    runner._config.update(saved)


class TestCli:
    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F12" in out

    def test_run_one(self, capsys):
        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "=== T1" in out
        assert "Cray C90" in out

    def test_unknown_id_errors(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["NOPE"])
        assert exc.value.code != 0
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_ids(self, capsys):
        assert main(["T1", "FN"]) == 0
        out = capsys.readouterr().out
        assert "=== T1" in out and "=== FN" in out

    def test_header_includes_wall_clock(self, capsys):
        assert main(["T1"]) == 0
        assert "s] ===" in capsys.readouterr().out

    def test_parallel_flag(self, capsys):
        assert main(["T1", "FN", "--parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "=== T1" in out and "=== FN" in out
        assert out.index("=== T1") < out.index("=== FN")  # id order kept

    def test_parallel_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["T1", "--parallel", "0"])
        assert exc.value.code != 0

    def test_no_cache_flag(self, capsys, tmp_path):
        assert main(["T1", "--no-cache"]) == 0
        assert runner._config["cache"] is False
        assert not (tmp_path / "cache").exists()  # nothing written

    def test_save_records_wall_clock(self, capsys, tmp_path):
        out_dir = tmp_path / "saved"
        assert main(["T1", "--save", str(out_dir)]) == 0
        text = (out_dir / "T1.txt").read_text()
        assert "Cray C90" in text
        assert "[wall-clock:" in text

    def test_clear_cache_flag(self, capsys):
        assert main(["--clear-cache"]) == 0
        assert "cleared" in capsys.readouterr().out
