"""Seed robustness: the experiments' conclusions must not depend on the
particular default seed (guards against seed-overfitted assertions)."""

import numpy as np
import pytest

from repro.experiments import exp1_hotspot, exp3_entropy, fig_modulemap
from repro.experiments.__main__ import main as experiments_main
from repro.simulator import toy_machine

SMALL = toy_machine(p=8, x=16, d=14)


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 777, 123456])
    def test_exp1_shape_stable(self, seed):
        s = exp1_hotspot.run(machine=SMALL, n=8192,
                             contentions=[1, 2048, 8192], seed=seed)
        sim = s.columns["simulated"]
        bsp = s.columns["bsp"]
        assert sim[-1] / bsp[-1] > SMALL.d * 0.8
        assert np.allclose(s.columns["dxbsp"], sim, rtol=0.3)

    @pytest.mark.parametrize("seed", [3, 999])
    def test_exp3_monotone_any_seed(self, seed):
        s = exp3_entropy.run(machine=SMALL, n=8192, bits=16, max_rounds=5,
                             seed=seed)
        assert s.columns["simulated"][-1] > s.columns["simulated"][0]

    def test_exp1_times_seed_insensitive(self):
        a = exp1_hotspot.run(machine=SMALL, n=8192,
                             contentions=[8192], seed=11)
        b = exp1_hotspot.run(machine=SMALL, n=8192,
                             contentions=[8192], seed=22)
        # Fully serialized regime: identical up to background noise.
        assert a.columns["simulated"][0] == pytest.approx(
            b.columns["simulated"][0], rel=0.02
        )

    @pytest.mark.parametrize("seed", [5, 50])
    def test_modulemap_bounds_any_seed(self, seed):
        s = fig_modulemap.run(machine=SMALL, n=4096, expansions=[4, 64],
                              trials=2, seed=seed)
        r = s.columns["ratio_h1"]
        assert (r >= 1.0 - 1e-9).all()
        assert r[-1] < 1.6


class TestCliSave:
    def test_save_writes_files(self, tmp_path, capsys):
        assert experiments_main(["T1", "--save", str(tmp_path)]) == 0
        capsys.readouterr()
        saved = tmp_path / "T1.txt"
        assert saved.exists()
        assert "Cray C90" in saved.read_text()


class TestResiduals:
    def test_small_scale_errors_bounded(self):
        from repro.experiments import fig_residuals

        rows = fig_residuals.run(machine=SMALL, n=4096, trials=3)
        for name, _, dx_mean, dx_worst, _, _ in rows:
            assert abs(dx_worst) < 0.2, name

    def test_families_cover_both_regimes(self):
        from repro.experiments.fig_residuals import FAMILIES

        assert {"uniform", "hotspot"} <= set(FAMILIES)
