"""The exception hierarchy contract: one catchable base type."""

import pytest

from repro.errors import (
    ContentionRuleError,
    MappingError,
    ParameterError,
    PatternError,
    ReproError,
    SimulationError,
)

ALL = [
    ParameterError,
    PatternError,
    SimulationError,
    MappingError,
    ContentionRuleError,
]


@pytest.mark.parametrize("exc", ALL)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_parameter_error_is_value_error():
    # API ergonomics: bad arguments also behave like stdlib ValueError.
    assert issubclass(ParameterError, ValueError)
    assert issubclass(PatternError, ValueError)
    assert issubclass(MappingError, ValueError)


def test_simulation_error_is_runtime_error():
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(ContentionRuleError, RuntimeError)


def test_catching_base_catches_all():
    for exc in ALL:
        with pytest.raises(ReproError):
            raise exc("boom")
