"""Tests for the extended VectorMachine operations."""

import numpy as np
import pytest

from repro import VectorMachine
from repro.errors import ParameterError, PatternError


@pytest.fixture
def vm(toy):
    return VectorMachine(toy)


class TestReduce:
    def test_add(self, vm):
        assert vm.reduce(vm.array(np.arange(5))) == 10.0

    def test_max_min(self, vm):
        a = vm.array(np.array([3, -1, 7]))
        assert vm.reduce(a, "max") == 7.0
        assert vm.reduce(a, "min") == -1.0

    def test_empty_max_rejected(self, vm):
        with pytest.raises(PatternError):
            vm.reduce(vm.empty(0), "max")

    def test_unknown_op(self, vm):
        with pytest.raises(ParameterError):
            vm.reduce(vm.array(np.arange(3)), "mul")

    def test_charged_one_pass(self, vm):
        vm.reduce(vm.array(np.arange(100)))
        assert vm.program.total_requests == 100


class TestSegmentedScan:
    def test_exclusive(self, vm):
        a = vm.array(np.array([1, 2, 3, 4]))
        out = vm.segmented_scan(a, [0, 0, 1, 1])
        assert (out.data == [0, 1, 0, 3]).all()

    def test_inclusive_max(self, vm):
        a = vm.array(np.array([1, 5, 2, 9]))
        out = vm.segmented_scan(a, [0, 0, 1, 1], op="max", exclusive=False)
        assert (out.data == [1, 5, 2, 9]).all()


class TestPack:
    def test_values(self, vm):
        a = vm.array(np.array([10, 20, 30, 40]))
        out = vm.pack(a, [True, False, True, False])
        assert (out.data == [10, 30]).all()

    def test_trace_has_scan_and_place(self, vm):
        a = vm.array(np.arange(8))
        vm.pack(a, np.arange(8) % 2 == 0)
        labels = [s.label for s in vm.program]
        assert "pack/scan" in labels and "pack/place" in labels

    def test_place_contention_free(self, vm):
        a = vm.array(np.arange(64))
        vm.pack(a, np.random.default_rng(0).random(64) < 0.5)
        place = [s for s in vm.program if s.label == "pack/place"][0]
        assert place.stats().max_location_contention == 1

    def test_empty_result(self, vm):
        a = vm.array(np.arange(4))
        out = vm.pack(a, [False] * 4)
        assert out.size == 0

    def test_mask_shape_checked(self, vm):
        with pytest.raises(PatternError):
            vm.pack(vm.array(np.arange(4)), [True])


class TestPermute:
    def test_values(self, vm):
        a = vm.array(np.array([10, 20, 30]))
        out = vm.permute(a, [2, 0, 1])
        assert (out.data == [20, 30, 10]).all()

    def test_non_permutation_rejected(self, vm):
        a = vm.array(np.arange(3))
        with pytest.raises(PatternError):
            vm.permute(a, [0, 0, 1])
        with pytest.raises(PatternError):
            vm.permute(a, [0, 1, 3])

    def test_contention_one(self, vm):
        a = vm.array(np.arange(16))
        vm.permute(a, np.random.default_rng(1).permutation(16))
        assert vm.program.max_location_contention() == 1


class TestComposition:
    def test_histogram_then_pack(self, vm):
        # Mini pipeline exercising several ops against numpy oracles.
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 16, size=512)
        hist_oracle = np.bincount(keys, minlength=16)
        hist = vm.array(hist_oracle)     # pretend it was computed
        nonzero = vm.pack(hist, hist.data > 0)
        assert (np.sort(nonzero.data) ==
                np.sort(hist_oracle[hist_oracle > 0])).all()
        total = vm.reduce(hist)
        assert total == 512
        assert vm.predicted_time > 0
        assert vm.simulate().total_time >= vm.program.total_requests / vm.machine.p