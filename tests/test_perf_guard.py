"""Opt-in perf-regression gate (``-m perf_guard``).

Deselected by default (see ``addopts`` in pyproject.toml) because it
depends on ``BENCH_cycle_engine.json``, which only exists after running
``pytest benchmarks/test_perf_cycle_engine.py``.  Run explicitly with::

    python -m pytest -m perf_guard tests/test_perf_guard.py
"""

import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "perf_guard", ROOT / "tools" / "perf_guard.py"
)
perf_guard = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_guard)


@pytest.mark.perf_guard
class TestPerfGuard:
    def test_current_run_within_budget(self, capsys):
        if not perf_guard.CURRENT.is_file():
            pytest.skip("no BENCH_cycle_engine.json — run the benchmark "
                        "first")
        assert perf_guard.main([]) == 0
        assert "perf_guard" in capsys.readouterr().out

    def test_compare_flags_regression(self):
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1}
        slow = dict(base, event_seconds=0.35)
        with pytest.raises(SystemExit, match="PERF REGRESSION"):
            perf_guard.compare(slow, base, max_ratio=2.0)
        assert perf_guard.compare(
            dict(base, event_seconds=0.15), base, max_ratio=2.0
        ).startswith("ok")

    def test_compare_skips_changed_workload(self):
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1}
        other = dict(base, n=1024, event_seconds=99.0)
        assert "workload changed" in perf_guard.compare(other, base, 2.0)

    def test_compare_rejects_telemetry_on(self):
        # The gated hot path must keep the opt-in counters off.
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1}
        hot = dict(base, telemetry="on")
        with pytest.raises(SystemExit, match="telemetry"):
            perf_guard.compare(hot, base, 2.0)
        # Pre-telemetry baselines (no field) still compare cleanly.
        legacy = {k: v for k, v in base.items() if k != "telemetry"}
        assert perf_guard.compare(legacy, legacy, 2.0).startswith("ok")

    def test_compare_gates_every_requested_key(self):
        # One slow timing fails the run even if the others are fine.
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1, "batch_seconds": 0.005}
        slow_batch = dict(base, batch_seconds=0.05)
        with pytest.raises(SystemExit, match="batch_seconds"):
            perf_guard.compare(slow_batch, base, 2.0,
                               keys=("event_seconds", "batch_seconds"))
        ok = perf_guard.compare(base, base, 2.0,
                                keys=("event_seconds", "batch_seconds"))
        assert "event_seconds" in ok and "batch_seconds" in ok

    def test_compare_skips_key_missing_from_baseline(self):
        # A baseline seeded before a timing existed gates what it has.
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1}
        current = dict(base, batch_seconds=99.0)
        verdict = perf_guard.compare(current, base, 2.0,
                                     keys=("event_seconds", "batch_seconds"))
        assert verdict.startswith("ok")
        assert "baseline lacks batch_seconds" in verdict

    def test_benches_cover_every_gated_file(self):
        names = [cur.name for cur, _base, _keys in perf_guard.BENCHES]
        assert "BENCH_cycle_engine.json" in names
        assert "BENCH_banksim.json" in names
        assert "BENCH_serving.json" in names

    def test_serving_bench_gates_hot_path(self):
        keys = {cur.name: keys for cur, _base, keys in perf_guard.BENCHES}
        assert "serving_seconds" in keys["BENCH_serving.json"]

    def test_cycle_bench_gates_fused_grid_pass(self):
        keys = {cur.name: keys for cur, _base, keys in perf_guard.BENCHES}
        assert "grid_fused_seconds" in keys["BENCH_cycle_engine.json"]

    def test_compare_skips_key_missing_from_current(self):
        # A partial benchmark re-run rewrites the file without every
        # gated key; the guard gates what is present.
        base = {"benchmark": "cycle_engine", "machine": "Cray J90",
                "n": 65536, "k": 65536, "telemetry": "off",
                "event_seconds": 0.1, "grid_fused_seconds": 0.01}
        current = {k: v for k, v in base.items()
                   if k != "grid_fused_seconds"}
        verdict = perf_guard.compare(
            current, base, 2.0,
            keys=("event_seconds", "grid_fused_seconds"))
        assert verdict.startswith("ok")
        assert "current run lacks grid_fused_seconds" in verdict
