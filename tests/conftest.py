"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.simulator import MachineConfig, toy_machine

# A leaner default hypothesis profile: the simulators make some property
# tests moderately expensive, and the suite has hundreds of tests.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def toy() -> MachineConfig:
    """Small default machine: p=4, 16 banks, d=6, g=1, L=0."""
    return toy_machine()


@pytest.fixture
def toy_j90ish() -> MachineConfig:
    """A J90-flavoured small machine: higher bank delay."""
    return toy_machine(p=4, x=8, d=14)
