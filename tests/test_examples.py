"""Smoke-run every script in examples/ as a subprocess.

The examples are the first code a reader runs; a stale import or a
renamed keyword in any of them is a release blocker, so each one must
exit 0 and print something.  They are sized to run in seconds (small n,
seed 1995); the suite runs them with an isolated on-disk cache so a
fresh checkout behaves the same as a warmed-up one.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ directory is empty"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env.pop("REPRO_PARALLEL", None)
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=str(tmp_path),
    )
    assert proc.returncode == 0, (
        f"{script.name} failed (rc={proc.returncode}):\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
