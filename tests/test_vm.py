"""Tests for the VectorMachine data-parallel front end."""

import numpy as np
import pytest

from repro import VectorMachine
from repro.errors import ParameterError, PatternError
from repro.simulator import toy_machine
from repro.mapping import linear_hash


@pytest.fixture
def vm(toy):
    return VectorMachine(toy)


class TestArrays:
    def test_array_copies_input(self, vm):
        src = np.arange(5)
        a = vm.array(src)
        src[0] = 99
        assert a.data[0] == 0

    def test_disjoint_bases(self, vm):
        a = vm.array(np.arange(100))
        b = vm.array(np.arange(50))
        assert b.base >= a.base + 100

    def test_named(self, vm):
        a = vm.array(np.arange(3), name="x")
        assert a.name == "x"

    def test_empty_alloc(self, vm):
        a = vm.empty(10)
        assert a.size == 10
        assert (a.data == 0).all()

    def test_2d_rejected(self, vm):
        with pytest.raises(PatternError):
            vm.array(np.zeros((2, 2)))

    def test_negative_size(self, vm):
        with pytest.raises(ParameterError):
            vm.empty(-1)

    def test_addresses(self, vm):
        a = vm.array(np.arange(4))
        assert (a.addresses() == a.base + np.arange(4)).all()
        assert (a.addresses([2, 0]) == [a.base + 2, a.base]).all()

    def test_address_bounds_checked(self, vm):
        a = vm.array(np.arange(4))
        with pytest.raises(PatternError):
            a.addresses([4])


class TestOperations:
    def test_gather_values(self, vm):
        x = vm.array(np.array([10, 20, 30, 40]))
        out = vm.gather(x, [3, 0, 0])
        assert (out.data == [40, 10, 10]).all()

    def test_gather_records_contention(self, vm):
        x = vm.array(np.arange(8))
        vm.gather(x, [5] * 7 + [1])
        assert vm.program.max_location_contention() == 7

    def test_scatter_values(self, vm):
        d = vm.empty(4)
        vm.scatter(d, [1, 3], [100, 300])
        assert (d.data == [0, 100, 0, 300]).all()

    def test_scatter_last_wins(self, vm):
        d = vm.empty(2)
        vm.scatter(d, [0, 0], [1, 2])
        assert d.data[0] == 2

    def test_scatter_shape_checked(self, vm):
        d = vm.empty(4)
        with pytest.raises(PatternError):
            vm.scatter(d, [0, 1], [1])

    def test_scan(self, vm):
        x = vm.array(np.array([1, 2, 3]))
        out = vm.scan(x)
        assert (out.data == [0, 1, 3]).all()

    def test_map(self, vm):
        x = vm.array(np.arange(4))
        out = vm.map(lambda v: v * 2, x)
        assert (out.data == [0, 2, 4, 6]).all()

    def test_map_shape_checked(self, vm):
        x = vm.array(np.arange(4))
        with pytest.raises(PatternError):
            vm.map(lambda v: v[:2], x)


class TestAccounting:
    def test_predicted_time_accumulates(self, vm):
        x = vm.array(np.arange(1000))
        assert vm.predicted_time == 0.0
        vm.gather(x, np.zeros(1000, dtype=np.int64))
        t1 = vm.predicted_time
        assert t1 >= vm.machine.d * 1000  # broadcast gather: d*k
        vm.scan(x)
        assert vm.predicted_time > t1

    def test_bsp_vs_dxbsp_contrast(self, vm):
        x = vm.array(np.arange(1000))
        vm.gather(x, np.zeros(1000, dtype=np.int64))
        assert vm.predicted_time > 3 * vm.predicted_time_bsp

    def test_simulate_matches_prediction(self, vm):
        x = vm.array(np.arange(4096))
        rng = np.random.default_rng(0)
        vm.gather(x, rng.integers(0, 4096, size=4096))
        vm.scan(x)
        sim = vm.simulate().total_time
        assert sim == pytest.approx(vm.predicted_time, rel=0.3)

    def test_reset(self, vm):
        x = vm.array(np.arange(10))
        vm.scan(x)
        vm.reset()
        assert len(vm.program) == 0
        assert vm.predicted_time == 0.0
        vm.scan(x)  # arrays still usable
        assert len(vm.program) == 1

    def test_bank_map_respected(self):
        machine = toy_machine(p=4, x=4, d=6)
        vm_h = VectorMachine(machine, bank_map=linear_hash(3))
        x = vm_h.array(np.arange(1024))
        # Strided gather that is pathological under interleaving.
        idx = (np.arange(64) * 16) % 1024
        vm_h.gather(x, idx)
        hashed = vm_h.predicted_time
        vm_i = VectorMachine(machine)
        y = vm_i.array(np.arange(1024))
        vm_i.gather(y, idx)
        assert hashed < vm_i.predicted_time


class TestEndToEnd:
    def test_histogram_program(self, vm):
        # A realistic mini-program: histogram by gather/scatter.
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 16, size=2048)
        hist = vm.empty(16)
        ones = np.ones(2048, dtype=np.int64)
        # counts via numpy oracle; the vm only needs the traffic pattern
        vm.scatter(hist, keys, ones, label="hist")
        labels = [s.label for s in vm.program]
        assert labels == ["hist"]
        k = vm.program.max_location_contention()
        assert k == np.bincount(keys).max()
