"""Tests for parameter estimation from measurements."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_bank_delay,
    measure_contention_curve,
)
from repro.errors import ParameterError
from repro.simulator import CRAY_C90, CRAY_J90, toy_machine


class TestEstimateBankDelay:
    @pytest.mark.parametrize("machine,true_d", [
        (CRAY_J90, 14.0),
        (CRAY_C90, 6.0),
        (toy_machine(p=4, x=8, d=25), 25.0),
    ], ids=["J90", "C90", "toy-d25"])
    def test_recovers_d_from_simulated_sweep(self, machine, true_d):
        ks, ts = measure_contention_curve(machine, n=16 * 1024, seed=1)
        est = estimate_bank_delay(ks, ts)
        assert est.d == pytest.approx(true_d, rel=0.08)

    def test_recovers_floor_and_knee(self):
        m = toy_machine(p=8, x=16, d=10)
        ks, ts = measure_contention_curve(m, n=8192, seed=2)
        est = estimate_bank_delay(ks, ts)
        assert est.floor == pytest.approx(8192 / 8, rel=0.1)
        assert est.knee == pytest.approx(8192 / (8 * 10), rel=0.2)
        assert est.n_points_used >= 2

    def test_synthetic_exact(self):
        k = np.array([1, 2, 4, 100, 200, 400, 800], dtype=float)
        t = np.maximum(50.0, 3.0 * k)
        est = estimate_bank_delay(k, t)
        assert est.d == pytest.approx(3.0)
        assert est.floor == pytest.approx(50.0)

    def test_flat_sweep_rejected(self):
        k = np.array([1.0, 2, 3, 4])
        t = np.full(4, 100.0)
        with pytest.raises(ParameterError, match="serialized"):
            estimate_bank_delay(k, t)

    @pytest.mark.parametrize("k,t", [
        ([1, 2, 3], [1, 2, 3]),          # too few points
        ([1, 2, 3, 0], [1, 2, 3, 4]),    # non-positive contention
        ([1, 2, 3, 4], [1, 2, 3, -4]),   # non-positive time
    ])
    def test_invalid_inputs(self, k, t):
        with pytest.raises(ParameterError):
            estimate_bank_delay(np.asarray(k, float), np.asarray(t, float))


class TestMeasureContentionCurve:
    def test_shapes_and_monotonicity(self):
        m = toy_machine(p=4, x=4, d=6)
        ks, ts = measure_contention_curve(m, n=4096, seed=3)
        assert ks.shape == ts.shape
        # Times non-decreasing in contention up to simulation noise.
        assert ts[-1] > ts[0]

    def test_invalid_n(self):
        with pytest.raises(ParameterError):
            measure_contention_curve(toy_machine(), n=0)
