"""Tests for the prediction pipeline."""

import numpy as np
import pytest

from repro.analysis import (
    compare_program,
    compare_scatter,
    relative_error,
    sweep_scatter,
)
from repro.core import Program, Superstep
from repro.simulator import toy_machine
from repro.workloads import broadcast, hotspot, uniform_random


class TestRelativeError:
    def test_exact(self):
        assert relative_error(100.0, 100.0) == 0.0

    def test_under_prediction_negative(self):
        assert relative_error(100.0, 50.0) == -0.5

    def test_zero_measured(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(0.0, 1.0) == float("inf")


class TestCompareScatter:
    def test_fields(self, toy):
        addr = hotspot(1024, 64, 1 << 20, seed=0)
        cmp = compare_scatter(toy, addr, label="t")
        assert cmp.label == "t"
        assert cmp.n == 1024
        assert cmp.contention == 64
        assert cmp.simulated_time > 0

    def test_dxbsp_closer_than_bsp_on_hot(self, toy):
        addr = broadcast(2048, 5)
        cmp = compare_scatter(toy, addr)
        assert abs(cmp.dxbsp_error) < abs(cmp.bsp_error)
        assert cmp.bsp_underprediction > toy.d / toy.g * 0.8

    def test_both_accurate_on_uniform(self):
        # Enough expansion that the pattern is throughput-bound (x > d/g);
        # there even the bank-oblivious BSP is fine.
        machine = toy_machine(p=4, x=16, d=6)
        addr = uniform_random(16_384, 1 << 24, seed=1)
        cmp = compare_scatter(machine, addr)
        assert abs(cmp.dxbsp_error) < 0.35
        assert abs(cmp.bsp_error) < 0.35

    def test_dxbsp_error_small_across_contention(self, toy):
        # The paper's headline: the model predicts within a small margin
        # across the whole contention sweep.
        for k in [1, 8, 64, 512, 4096]:
            addr = hotspot(4096, min(k, 4096), 1 << 20, seed=k)
            cmp = compare_scatter(toy, addr)
            assert abs(cmp.dxbsp_error) < 0.35, k

    def test_row(self, toy):
        cmp = compare_scatter(toy, uniform_random(128, 1 << 16, seed=2),
                              label="r")
        row = cmp.row()
        assert row[0] == "r" and row[1] == 128


class TestCompareProgram:
    def test_sums_supersteps(self, toy):
        prog = Program([
            Superstep(addresses=uniform_random(512, 1 << 16, seed=3)),
            Superstep(addresses=broadcast(128, 7)),
        ])
        cmp = compare_program(toy, prog)
        s0 = compare_scatter(toy, prog[0].addresses)
        s1 = compare_scatter(toy, prog[1].addresses)
        assert cmp.simulated_time == pytest.approx(
            s0.simulated_time + s1.simulated_time
        )
        assert cmp.n == 640
        assert cmp.contention == 128


class TestSweep:
    def test_sweep_order_preserved(self, toy):
        pats = [("a", uniform_random(64, 1 << 10, seed=4)),
                ("b", broadcast(64, 1))]
        out = sweep_scatter(toy, pats)
        assert [c.label for c in out] == ["a", "b"]
        assert out[1].contention == 64
