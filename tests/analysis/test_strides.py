"""Tests for the constant-stride analysis extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    banks_touched,
    effective_bandwidth,
    predict_strided_time,
    stride_sweep,
)
from repro.errors import ParameterError
from repro.simulator import simulate_scatter, toy_machine
from repro.workloads import strided


class TestBanksTouched:
    @pytest.mark.parametrize("stride,banks,expect", [
        (1, 16, 16),      # unit stride: all banks
        (2, 16, 8),
        (16, 16, 1),      # bank-count stride: one bank
        (3, 16, 16),      # coprime: all banks
        (6, 16, 8),
        (5, 10, 2),
    ])
    def test_values(self, stride, banks, expect):
        assert banks_touched(stride, banks) == expect

    def test_invalid(self):
        with pytest.raises(ParameterError):
            banks_touched(0, 16)


class TestPredictStridedTime:
    def test_unit_stride_throughput_bound(self):
        m = toy_machine(p=4, x=8, d=6)  # 32 banks > d per proc
        n = 3200
        assert predict_strided_time(m, n, 1) == n / 4

    def test_pathological_stride(self):
        m = toy_machine(p=4, x=4, d=6)  # 16 banks
        n = 1600
        # stride 16 -> every request to one bank -> n*d.
        assert predict_strided_time(m, n, 16) == n * 6

    def test_empty(self):
        m = toy_machine(L=3)
        assert predict_strided_time(m, 0, 4) == 3

    def test_matches_simulator(self):
        m = toy_machine(p=4, x=4, d=6)
        for stride in [1, 2, 3, 4, 8, 16, 17]:
            addr = strided(2000, stride)
            sim = simulate_scatter(m, addr).time
            pred = predict_strided_time(m, 2000, stride)
            assert sim == pytest.approx(pred, rel=0.05), stride

    @given(stride=st.integers(1, 64), n=st.integers(1, 3000))
    @settings(max_examples=20)
    def test_lower_bound_of_simulation(self, stride, n):
        m = toy_machine(p=4, x=4, d=6)
        sim = simulate_scatter(m, strided(n, stride)).time
        pred = predict_strided_time(m, n, stride)
        assert sim >= pred - 1e-9


class TestBandwidthAndSweep:
    def test_bandwidth_ordering(self):
        m = toy_machine(p=4, x=4, d=6)
        bw_unit = effective_bandwidth(m, 4096, 1)
        bw_bad = effective_bandwidth(m, 4096, 16)
        assert bw_unit > 5 * bw_bad

    def test_sweep_shape(self):
        m = toy_machine(p=4, x=4, d=6)
        s = stride_sweep(m, 1024, [1, 2, 4, 8, 16])
        assert s.headers() == [
            "stride", "banks_touched", "predicted", "elements_per_cycle"
        ]
        touched = s.columns["banks_touched"]
        assert (np.diff(touched) <= 0).all()  # powers of two: monotone
        assert touched[0] == 16 and touched[-1] == 1
