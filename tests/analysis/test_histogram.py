"""Tests for the histogram-based predictor."""

import numpy as np
import pytest

from repro.analysis import (
    expected_max_bank_load_mc,
    predict_scatter_from_histogram,
)
from repro.core import DXBSPParams, location_contention
from repro.errors import ParameterError
from repro.mapping import RandomMap
from repro.simulator import simulate_scatter, toy_machine
from repro.workloads import hotspot, uniform_random

PARAMS = DXBSPParams(p=8, d=14, x=16)


class TestExpectedMaxBankLoadMc:
    def test_single_location(self):
        # One location of multiplicity 100: max load is always 100.
        assert expected_max_bank_load_mc([100], 16, trials=5, seed=0) == 100

    def test_all_singletons_near_balls_in_bins(self):
        est = expected_max_bank_load_mc(
            np.ones(4096, dtype=np.int64), 64, trials=10, seed=1
        )
        mean = 4096 / 64
        assert mean < est < 1.5 * mean

    def test_empty(self):
        assert expected_max_bank_load_mc([], 16) == 0.0

    def test_at_least_max_count(self):
        est = expected_max_bank_load_mc([50, 1, 1, 1], 32, trials=8, seed=2)
        assert est >= 50

    @pytest.mark.parametrize("kwargs", [
        dict(counts=[0], n_banks=4),
        dict(counts=[1], n_banks=0),
        dict(counts=[1], n_banks=4, trials=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            expected_max_bank_load_mc(**kwargs)


class TestPredictFromHistogram:
    def test_matches_pattern_simulation(self):
        # Predicting from the histogram alone must agree with simulating
        # the actual pattern through a random map.
        machine = toy_machine(p=8, x=16, d=14)
        for k in [1, 64, 2048]:
            addr = hotspot(16_384, k, 1 << 24, seed=k)
            _, counts = location_contention(addr)
            pred = predict_scatter_from_histogram(
                machine.params(), counts, trials=16, seed=3
            )
            sim = simulate_scatter(machine, addr, RandomMap(4)).time
            assert sim == pytest.approx(pred, rel=0.15), k

    def test_throughput_floor(self):
        pred = predict_scatter_from_histogram(
            PARAMS, np.ones(8192, dtype=np.int64), trials=4, seed=5
        )
        assert pred >= 8192 / 8

    def test_hot_histogram_charged_at_d(self):
        counts = np.concatenate([[4096], np.ones(1000, dtype=np.int64)])
        pred = predict_scatter_from_histogram(PARAMS, counts, trials=4, seed=6)
        assert pred >= 14 * 4096

    def test_uniform_random_pattern_end_to_end(self):
        machine = toy_machine(p=8, x=16, d=14)
        addr = uniform_random(16_384, 1 << 20, seed=7)
        _, counts = location_contention(addr)
        pred = predict_scatter_from_histogram(
            machine.params(), counts, trials=16, seed=8
        )
        sim = simulate_scatter(machine, addr, RandomMap(9)).time
        assert sim == pytest.approx(pred, rel=0.15)
