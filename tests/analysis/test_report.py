"""Tests for table/series formatting."""

import numpy as np
import pytest

from repro.analysis import Series, csv_lines, format_table
from repro.errors import ParameterError


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(("a", "bb"), [(1, 2.5), (30, 4)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        out = format_table(("x",), [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ParameterError):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows(self):
        out = format_table(("a",), [])
        assert "a" in out

    def test_float_formatting(self):
        out = format_table(("v",), [(1234567.0,), (0.0001,), (0.0,)])
        assert "e" in out  # scientific for extremes
        assert "0" in out

    def test_strings_passthrough(self):
        out = format_table(("name",), [("hello",)])
        assert "hello" in out


class TestSeries:
    def _series(self):
        s = Series(name="s", x_label="x", x=np.array([1.0, 2.0, 3.0]))
        s.add("y1", [10, 20, 30])
        s.add("y2", [1, 2, 3])
        return s

    def test_headers_and_rows(self):
        s = self._series()
        assert s.headers() == ["x", "y1", "y2"]
        rows = s.rows()
        assert rows[1] == (2.0, 20.0, 2.0)

    def test_shape_mismatch_rejected(self):
        s = Series(name="s", x_label="x", x=np.array([1.0]))
        with pytest.raises(ParameterError):
            s.add("bad", [1, 2])

    def test_format_contains_everything(self):
        out = self._series().format()
        assert "s" in out and "y1" in out and "30" in out


class TestCsvLines:
    def test_header_first(self):
        lines = csv_lines(("a", "b"), [(1, 2.5)])
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_precision(self):
        lines = csv_lines(("v",), [(1 / 3,)])
        assert lines[1].startswith("0.3333333333")

    def test_roundtrip_parse(self):
        lines = csv_lines(("x", "y"), [(1.5, 2), (3.25, 4)])
        parsed = [tuple(float(c) for c in l.split(",")) for l in lines[1:]]
        assert parsed == [(1.5, 2.0), (3.25, 4.0)]
