"""Tests for the plain-text visualizations."""

import numpy as np
import pytest

from repro.analysis import Series, bank_load_strip, series_panel, sparkline
from repro.errors import ParameterError
from repro.simulator import SimResult


def make_result(loads):
    loads = np.asarray(loads, dtype=np.int64)
    return SimResult(time=100.0, n=int(loads.sum()), bank_loads=loads)


class TestSparkline:
    def test_monotone_levels(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert len(s) == 5
        assert s[0] == " " and s[-1] == "█"

    def test_constant_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_custom_vmax(self):
        s = sparkline([1, 1], vmax=8)
        assert s[0] != "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            sparkline(np.zeros((2, 2)))


class TestBankLoadStrip:
    def test_contains_stats(self):
        out = bank_load_strip(make_result([10, 0, 0, 0]))
        assert "max=10" in out
        assert "4 banks" in out

    def test_width_respected(self):
        out = bank_load_strip(make_result(np.arange(256)), width=32)
        strip = out[out.index("[") + 1:out.index("]")]
        assert len(strip) == 32

    def test_fewer_banks_than_width(self):
        out = bank_load_strip(make_result([1, 2]), width=64)
        strip = out[out.index("[") + 1:out.index("]")]
        assert len(strip) == 2

    def test_invalid_width(self):
        with pytest.raises(ParameterError):
            bank_load_strip(make_result([1]), width=0)


class TestSeriesPanel:
    def test_all_columns_rendered(self):
        s = Series(name="demo", x_label="x", x=np.arange(4.0))
        s.add("alpha", [1, 10, 100, 1000])
        s.add("beta", [5, 5, 5, 5])
        out = series_panel(s)
        assert "demo" in out
        assert "alpha" in out and "beta" in out
        assert "1e+03" in out or "1000" in out

    def test_linear_mode(self):
        s = Series(name="d", x_label="x", x=np.arange(3.0))
        s.add("c", [0, 1, 2])
        assert series_panel(s, log=False)
