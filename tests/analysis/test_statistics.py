"""Tests for mean/CI helpers."""

import numpy as np
import pytest

from repro.analysis import MeanCI, mean_ci, run_until_stable
from repro.errors import ParameterError


class TestMeanCI:
    def test_single_sample(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0 and ci.half_width == 0.0 and ci.n == 1

    def test_constant_samples(self):
        ci = mean_ci([3.0] * 10)
        assert ci.mean == 3.0
        assert ci.half_width == 0.0
        assert ci.relative_half_width == 0.0

    def test_known_interval(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=400)
        ci = mean_ci(samples)
        assert ci.lo < 10.0 < ci.hi
        assert ci.half_width == pytest.approx(1.96 * 2 / 20, rel=0.15)

    def test_coverage(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(200):
            ci = mean_ci(rng.normal(0.0, 1.0, size=20), confidence=0.9)
            if ci.lo <= 0.0 <= ci.hi:
                hits += 1
        assert 0.82 <= hits / 200 <= 0.97

    def test_invalid(self):
        with pytest.raises(ParameterError):
            mean_ci([])
        with pytest.raises(ParameterError):
            mean_ci([1.0], confidence=1.0)

    def test_endpoints(self):
        ci = MeanCI(mean=10.0, half_width=2.0, n=5, confidence=0.95)
        assert ci.lo == 8.0 and ci.hi == 12.0
        assert ci.relative_half_width == 0.2


class TestRunUntilStable:
    def test_deterministic_converges_at_min(self):
        calls = []
        ci = run_until_stable(lambda i: (calls.append(i), 7.0)[1],
                              min_trials=5)
        assert len(calls) == 5
        assert ci.mean == 7.0

    def test_noisy_converges(self):
        rng = np.random.default_rng(2)
        ci = run_until_stable(lambda i: rng.normal(100.0, 5.0),
                              target_rel_half_width=0.02)
        assert ci.relative_half_width <= 0.02 or ci.n == 200
        assert ci.mean == pytest.approx(100.0, rel=0.05)

    def test_max_trials_cap(self):
        rng = np.random.default_rng(3)
        ci = run_until_stable(lambda i: rng.normal(0.0, 100.0),
                              target_rel_half_width=1e-9, max_trials=10)
        assert ci.n == 10

    def test_invalid(self):
        with pytest.raises(ParameterError):
            run_until_stable(lambda i: 1.0, min_trials=1)
        with pytest.raises(ParameterError):
            run_until_stable(lambda i: 1.0, target_rel_half_width=0)
