"""Tests for the EREW-mapping helpers (the paper's other high-level-model
scenario)."""

import pytest

from repro.core import DXBSPParams
from repro.emulation import (
    emulation_overhead,
    erew_emulation_overhead,
    erew_step_time_bound,
    step_time_bound,
)


class TestErewBound:
    def test_is_k1_special_case(self):
        p = DXBSPParams(p=8, d=14, x=64)
        assert erew_step_time_bound(p, 10_000) == \
            step_time_bound(p, 10_000, 1)

    def test_empty_step(self):
        p = DXBSPParams(p=8, d=14, x=64, L=3)
        assert erew_step_time_bound(p, 0) == 3

    def test_overhead_near_one_on_high_bandwidth(self):
        # x well beyond d/g with lots of slack: essentially free mapping.
        p = DXBSPParams(p=8, d=14, x=64, g=1)
        assert erew_emulation_overhead(p, 64 * 1024) < 1.2

    def test_overhead_is_dx_below_parity(self):
        p = DXBSPParams(p=8, d=14, x=2, g=1)
        oh = erew_emulation_overhead(p, 64 * 1024)
        assert oh == pytest.approx(14 / 2, rel=0.25)

    def test_erew_never_costlier_than_qrqw(self):
        p = DXBSPParams(p=8, d=14, x=16)
        for k in [1, 4, 64, 1024]:
            assert erew_emulation_overhead(p, 32_768) <= \
                emulation_overhead(p, 32_768, k) + 1e-9
