"""Tests for the QRQW → (d,x)-BSP emulation (Theorems 5.1/5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DXBSPParams
from repro.emulation import (
    QRQWPram,
    delta_for_whp,
    emulate_qrqw,
    emulation_overhead,
    inevitable_overhead,
    step_time_bound,
)
from repro.errors import ParameterError
from repro.simulator import toy_machine
from repro.workloads import hotspot


class TestInevitableOverhead:
    def test_below_balance(self):
        # x < d/g: banks cannot keep up; factor d/(gx).
        p = DXBSPParams(p=4, d=12, x=3, g=1)
        assert inevitable_overhead(p) == pytest.approx(4.0)

    def test_above_balance_is_one(self):
        p = DXBSPParams(p=4, d=6, x=64, g=1)
        assert inevitable_overhead(p) == 1.0

    def test_gap_scales(self):
        p = DXBSPParams(p=4, d=12, x=3, g=2)
        assert inevitable_overhead(p) == pytest.approx(2.0)


class TestDeltaForWhp:
    def test_positive(self):
        assert delta_for_whp(10_000, 1, 64) > 0

    def test_decreasing_in_slack(self):
        # More requests per bank (larger mu) -> tighter concentration.
        d_small = delta_for_whp(1_000, 1, 64)
        d_big = delta_for_whp(100_000, 1, 64)
        assert d_big < d_small

    def test_increasing_in_contention(self):
        # Higher k -> fewer independent units -> weaker concentration.
        assert delta_for_whp(10_000, 100, 64) > delta_for_whp(10_000, 1, 64)

    def test_meets_target(self):
        from repro.mapping import raghavan_spencer_tail

        n, k, b, fp = 50_000, 4, 128, 1e-6
        delta = delta_for_whp(n, k, b, fp)
        mu = n / (k * b)
        assert b * raghavan_spencer_tail(mu, delta) <= fp * 1.001

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_ops=0, k=1, n_banks=4),
            dict(n_ops=10, k=0, n_banks=4),
            dict(n_ops=10, k=11, n_banks=4),
            dict(n_ops=10, k=1, n_banks=0),
            dict(n_ops=10, k=1, n_banks=4, fail_prob=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            delta_for_whp(**kwargs)


class TestStepTimeBound:
    PARAMS = DXBSPParams(p=8, d=14, x=64, g=1, L=0)

    def test_empty_step(self):
        assert step_time_bound(self.PARAMS.with_(L=5), 0, 1) == 5

    def test_contention_floor(self):
        # d*k is a hard floor of the bound.
        assert step_time_bound(self.PARAMS, 1000, 500) >= 14 * 500

    def test_pipeline_floor(self):
        assert step_time_bound(self.PARAMS, 80_000, 1) >= 10_000

    def test_simulation_within_bound(self):
        # The whp bound must (comfortably) cover actual simulated times.
        machine = toy_machine(p=8, x=16, d=6)
        params = machine.params()
        for k in [1, 16, 256]:
            addr = hotspot(16_384, k, 1 << 22, seed=k)
            pram = QRQWPram(p=8, memory_size=1 << 22)
            pram.write(addr, np.arange(addr.size))
            res = emulate_qrqw(machine, pram, seed=3)
            assert res.simulated_time <= res.bound_time * 1.05, k

    @given(x=st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128]))
    @settings(max_examples=8)
    def test_overhead_decreasing_in_expansion(self, x):
        p1 = DXBSPParams(p=8, d=14, x=x, g=1)
        p2 = DXBSPParams(p=8, d=14, x=2 * x, g=1)
        o1 = emulation_overhead(p1, 32_768, 4)
        o2 = emulation_overhead(p2, 32_768, 4)
        assert o2 <= o1 * 1.001


class TestEmulateQrqw:
    def _pram(self, p=4, steps=3, n=2048, k=32):
        pram = QRQWPram(p=p, memory_size=1 << 20)
        for s in range(steps):
            addr = hotspot(n, k, 1 << 20, seed=s)
            pram.write(addr, np.arange(n))
        return pram

    def test_result_fields(self, toy):
        pram = self._pram()
        res = emulate_qrqw(toy, pram, seed=0)
        assert res.n_steps == 3
        assert res.n_ops == 3 * 2048
        assert res.qrqw_time == pram.time
        assert res.simulated_time > 0

    def test_measured_overhead_at_least_inevitable(self, toy):
        res = emulate_qrqw(toy, self._pram(), seed=1)
        # Overhead can't beat the bandwidth imbalance floor (within noise).
        assert res.measured_overhead >= \
            0.9 * inevitable_overhead(toy.params())

    def test_bound_tightness_le_one(self, toy):
        res = emulate_qrqw(toy, self._pram(), seed=2)
        assert res.bound_tightness <= 1.05

    def test_empty_program(self, toy):
        pram = QRQWPram(p=4, memory_size=10)
        res = emulate_qrqw(toy, pram)
        assert res.simulated_time == 0.0
        assert res.measured_overhead == 1.0

    def test_expansion_helps_measured(self):
        pram = self._pram(p=8, n=8192, k=8)
        slow = emulate_qrqw(toy_machine(p=8, x=1, d=14), pram, seed=4)
        fast = emulate_qrqw(toy_machine(p=8, x=64, d=14), pram, seed=4)
        assert fast.simulated_time < slow.simulated_time
