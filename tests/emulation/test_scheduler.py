"""Tests for the explicit-slackness emulation scheduler."""

import numpy as np
import pytest

from repro.emulation import QRQWPram, SlackPoint, slackness_sweep
from repro.errors import ParameterError
from repro.simulator import toy_machine
from repro.workloads import hotspot, uniform_random


def build_pram(p_virtual=64, steps=3, n_per_step=8192, k=4, seed=0):
    pram = QRQWPram(p=p_virtual, memory_size=1 << 24)
    for s in range(steps):
        addr = hotspot(n_per_step, k, 1 << 24, seed=seed + s)
        pram.write(addr, np.arange(n_per_step), label=f"s{s}")
    return pram


class TestSlacknessSweep:
    def test_points_shape(self):
        pram = build_pram()
        template = toy_machine(p=64, x=16, d=14)
        pts = slackness_sweep(pram, template, sigmas=[1, 4, 16])
        assert [p.sigma for p in pts] == [1, 4, 16]
        assert [p.machine_p for p in pts] == [64, 16, 4]
        for p in pts:
            assert p.emulated_time > 0
            assert 0 < p.efficiency <= 1.05

    def test_efficiency_improves_with_slack(self):
        # With a per-superstep overhead L, slack amortizes it: efficiency
        # grows with sigma (the work-preservation claim).
        pram = build_pram()
        template = toy_machine(p=64, x=16, d=14, L=2000)
        pts = slackness_sweep(pram, template, sigmas=[1, 4, 16])
        effs = [p.efficiency for p in pts]
        assert effs[-1] > effs[0]

    def test_high_slack_efficiency_near_constant(self):
        # Work preservation: doubling sigma beyond the threshold roughly
        # doubles the time (constant efficiency).
        pram = build_pram()
        template = toy_machine(p=64, x=16, d=14)
        pts = slackness_sweep(pram, template, sigmas=[8, 16, 32])
        times = [p.emulated_time for p in pts]
        assert times[1] == pytest.approx(2 * times[0], rel=0.2)
        assert times[2] == pytest.approx(2 * times[1], rel=0.2)

    def test_bad_sigma_rejected(self):
        pram = build_pram(p_virtual=64)
        template = toy_machine(p=64, x=4)
        with pytest.raises(ParameterError):
            slackness_sweep(pram, template, sigmas=[3])  # doesn't divide
        with pytest.raises(ParameterError):
            slackness_sweep(pram, template, sigmas=[0])
        with pytest.raises(ParameterError):
            slackness_sweep(pram, template, sigmas=[])

    def test_empty_steps_cost_L(self):
        pram = QRQWPram(p=8, memory_size=16)
        pram.log.log()  # an empty step
        template = toy_machine(p=8, x=4, L=10)
        pts = slackness_sweep(pram, template, sigmas=[1])
        assert pts[0].emulated_time == 10


class TestMachineClock:
    def test_seconds_conversion(self):
        from repro.simulator import CRAY_J90

        # 100 MHz: 1e8 cycles = 1 second.
        assert CRAY_J90.seconds(1e8) == pytest.approx(1.0)

    def test_presets_have_clocks(self):
        from repro.simulator import TABLE1_MACHINES

        for m in TABLE1_MACHINES:
            assert m.clock_mhz and m.clock_mhz > 0

    def test_unset_clock_raises(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            toy_machine().seconds(100)

    def test_negative_cycles_rejected(self):
        from repro.errors import ParameterError
        from repro.simulator import CRAY_C90

        with pytest.raises(ParameterError):
            CRAY_C90.seconds(-1)

    def test_invalid_clock(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            toy_machine().with_(clock_mhz=0)
