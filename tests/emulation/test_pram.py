"""Tests for shared PRAM machinery."""

import numpy as np
import pytest

from repro.emulation import SharedMemory, StepLog
from repro.errors import ParameterError, PatternError


class TestSharedMemory:
    def test_init_fill(self):
        mem = SharedMemory(8, fill=7)
        assert (mem.read(np.arange(8)) == 7).all()

    def test_write_read_roundtrip(self):
        mem = SharedMemory(10)
        mem.write([1, 3, 5], [10, 30, 50])
        assert (mem.read([5, 3, 1]) == [50, 30, 10]).all()

    def test_scalar_broadcast_write(self):
        mem = SharedMemory(5)
        mem.write([0, 1, 2], 9)
        assert (mem.read([0, 1, 2]) == 9).all()

    def test_colliding_writes_last_wins(self):
        mem = SharedMemory(4)
        mem.write([2, 2, 2], [1, 2, 3])
        assert mem.read([2])[0] == 3

    def test_out_of_range(self):
        mem = SharedMemory(4)
        with pytest.raises(PatternError):
            mem.read([4])
        with pytest.raises(PatternError):
            mem.write([5], [1])

    def test_shape_mismatch(self):
        mem = SharedMemory(4)
        with pytest.raises(PatternError):
            mem.write([1, 2], [1, 2, 3])

    def test_negative_size(self):
        with pytest.raises(ParameterError):
            SharedMemory(-1)

    def test_snapshot_is_copy(self):
        mem = SharedMemory(3)
        snap = mem.snapshot()
        mem.write([0], [99])
        assert snap[0] == 0

    def test_read_returns_copy(self):
        mem = SharedMemory(3)
        out = mem.read([0, 1])
        out[0] = 42
        assert mem.read([0])[0] == 0


class TestStepLog:
    def test_contention_split(self):
        log = StepLog()
        rec = log.log(reads=np.array([1, 1, 2]), writes=np.array([5, 6]))
        assert rec.read_contention == 2
        assert rec.write_contention == 1
        assert rec.max_contention == 2
        assert rec.n_ops == 5

    def test_addresses_concatenated(self):
        log = StepLog()
        rec = log.log(reads=np.array([1]), writes=np.array([2, 3]))
        assert (rec.addresses == [1, 2, 3]).all()

    def test_empty_step(self):
        log = StepLog()
        rec = log.log()
        assert rec.n_ops == 0 and rec.max_contention == 0

    def test_indexing_and_iteration(self):
        log = StepLog()
        log.log(reads=np.array([1]), label="a")
        log.log(writes=np.array([2]), label="b")
        assert len(log) == 2
        assert [r.label for r in log] == ["a", "b"]
        assert log[1].label == "b"
        assert [r.label for r in log.records] == ["a", "b"]
