"""Tests for the QRQW / EREW / CRCW cost rules."""

import numpy as np
import pytest

from repro.emulation import CRCWPram, EREWPram, QRQWPram
from repro.errors import ContentionRuleError, ParameterError


class TestQRQW:
    def test_step_time_is_max_contention(self):
        pram = QRQWPram(p=4, memory_size=100)
        pram.write(np.array([7] * 10 + [1, 2]), np.arange(12))
        # ceil(12/4) = 3 per proc, contention 10 -> step time 10.
        assert pram.time == 10

    def test_per_proc_term(self):
        pram = QRQWPram(p=2, memory_size=100)
        pram.write(np.arange(10), np.arange(10))  # contention 1, 5/proc
        assert pram.time == 5

    def test_work(self):
        pram = QRQWPram(p=4, memory_size=10)
        pram.read(np.array([3, 3]))
        assert pram.work == 4 * pram.time

    def test_combined_step_counts_once(self):
        pram = QRQWPram(p=8, memory_size=10)
        out = pram.step(reads=np.array([1, 2]), writes=np.array([3]),
                        values=np.array([9]))
        assert out is not None and (out == 0).all()
        assert len(pram.log) == 1
        assert pram.memory.read([3])[0] == 9

    def test_reads_see_pre_step_memory(self):
        pram = QRQWPram(p=2, memory_size=4)
        pram.write(np.array([0]), np.array([5]))
        out = pram.step(reads=np.array([0]), writes=np.array([0]),
                        values=np.array([6]))
        assert out[0] == 5
        assert pram.memory.read([0])[0] == 6

    def test_max_contention_tracked(self):
        pram = QRQWPram(p=2, memory_size=10)
        pram.write(np.array([1, 1, 1]), np.zeros(3, dtype=np.int64))
        pram.read(np.array([2, 3]))
        assert pram.max_contention == 3

    def test_step_times_vector(self):
        pram = QRQWPram(p=4, memory_size=10)
        pram.write(np.array([1] * 8), np.arange(8))
        pram.read(np.arange(4))
        assert (pram.step_times() == [8, 1]).all()

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            QRQWPram(p=0, memory_size=10)

    def test_empty_program(self):
        assert QRQWPram(p=4, memory_size=4).time == 0


class TestEREW:
    def test_exclusive_ok(self):
        pram = EREWPram(p=4, memory_size=10)
        pram.write(np.arange(8), np.arange(8))
        assert (pram.read(np.arange(8)) == np.arange(8)).all()
        assert pram.time == 2 * 2  # ceil(8/4) per step

    def test_concurrent_read_raises(self):
        pram = EREWPram(p=4, memory_size=10)
        with pytest.raises(ContentionRuleError):
            pram.read(np.array([5, 5]))

    def test_concurrent_write_raises_before_mutation(self):
        pram = EREWPram(p=4, memory_size=10)
        with pytest.raises(ContentionRuleError):
            pram.write(np.array([5, 5]), np.array([1, 2]))
        assert pram.memory.read([5])[0] == 0  # untouched

    def test_error_message_names_step(self):
        pram = EREWPram(p=4, memory_size=10)
        with pytest.raises(ContentionRuleError, match="contention 2"):
            pram.read(np.array([1, 1]), label="bad-step")


class TestCRCW:
    def test_contention_free_cost(self):
        pram = CRCWPram(p=4, memory_size=10)
        pram.write(np.array([3] * 100), np.arange(100))
        # 100 ops on 4 procs: 25 per proc; contention never charged.
        assert pram.time == 25
        assert pram.max_contention == 100

    def test_arbitrary_winner_is_last(self):
        pram = CRCWPram(p=4, memory_size=10)
        pram.write(np.array([3, 3]), np.array([8, 9]))
        assert pram.memory.read([3])[0] == 9


class TestRuleOrdering:
    def test_same_program_cost_ordering(self):
        # For any legal-everywhere program: CRCW time <= QRQW time, and a
        # contention-1 program costs the same under all three rules.
        addr = np.arange(16)
        vals = np.arange(16)
        crcw = CRCWPram(p=4, memory_size=20)
        qrqw = QRQWPram(p=4, memory_size=20)
        erew = EREWPram(p=4, memory_size=20)
        for pram in (crcw, qrqw, erew):
            pram.write(addr, vals)
            pram.read(addr)
        assert crcw.time == qrqw.time == erew.time

    def test_contended_program_ordering(self):
        hot = np.array([1] * 12)
        crcw = CRCWPram(p=4, memory_size=4)
        qrqw = QRQWPram(p=4, memory_size=4)
        crcw.write(hot, np.arange(12))
        qrqw.write(hot, np.arange(12))
        assert crcw.time < qrqw.time
