"""Cross-feature tests: CRCW semantics need combining hardware.

The paper argues the CRCW rule is unrealistic for bank-based machines —
*unless* the network combines (footnote 1).  With both the CRCW PRAM and
the combining machine option in the library, that argument is testable:
a CRCW program's unit-cost accounting is met by the simulator exactly
when combining is on, and violated by a factor ~d·k when it is off.
"""

import numpy as np
import pytest

from repro.emulation import CRCWPram, emulate_qrqw, QRQWPram
from repro.mapping import linear_hash
from repro.simulator import simulate_scatter, toy_machine
from repro.workloads import broadcast, hotspot


class TestCrcwNeedsCombining:
    def setup_method(self):
        self.machine = toy_machine(p=8, x=16, d=14)
        self.n, self.k = 8192, 1024
        self.addr = hotspot(self.n, self.k, 1 << 22, seed=0)

    def test_crcw_charges_unit_cost(self):
        pram = CRCWPram(p=8, memory_size=1 << 22)
        pram.write(self.addr, np.arange(self.n))
        # CRCW time: ceil(n/p), contention free.
        assert pram.time == self.n // 8

    def test_plain_machine_misses_crcw_by_d(self):
        sim = simulate_scatter(self.machine, self.addr, linear_hash(1)).time
        crcw_cycles = self.machine.g * (self.n / 8)
        assert sim > 10 * crcw_cycles  # d*k dominates: CRCW accounting wrong

    def test_combining_machine_meets_crcw(self):
        m = self.machine.with_(combining=True)
        sim = simulate_scatter(m, self.addr, linear_hash(1)).time
        crcw_cycles = self.machine.g * (self.n / 8)
        assert sim <= 1.5 * crcw_cycles

    def test_broadcast_extreme(self):
        m = self.machine.with_(combining=True)
        addr = broadcast(8192, 7)
        sim = simulate_scatter(m, addr).time
        assert sim <= 8192 / 8 + self.machine.d + 2

    def test_qrqw_unaffected_by_combining_when_k_small(self):
        # Sanity: for low-contention programs the combining option barely
        # matters — QRQW and CRCW agree there anyway.
        pram = QRQWPram(p=8, memory_size=1 << 22)
        pram.write(hotspot(8192, 2, 1 << 22, seed=1), np.arange(8192))
        plain = emulate_qrqw(self.machine, pram, seed=2)
        combined = emulate_qrqw(self.machine.with_(combining=True), pram,
                                seed=2)
        assert combined.simulated_time == pytest.approx(
            plain.simulated_time, rel=0.1
        )
