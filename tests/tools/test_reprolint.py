"""Tests for the reprolint static-analysis pass.

Every rule gets at least one positive fixture (snippet that must be
flagged) and one negative fixture (snippet that must pass).  Fixtures
are inline strings, never files on disk — reprolint itself walks
``src tests`` and must stay clean over this very test file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import (
    Finding,
    SourceFile,
    all_rules,
    lint_paths,
    load_files,
    render_json,
    render_text,
    run_lint,
)

REPO = Path(__file__).resolve().parents[2]

#: Default virtual path: inside the package, so _SRC-scoped rules apply.
SRC_PATH = "src/repro/simulator/snippet.py"


def lint(code, rel=SRC_PATH, select=None):
    """Lint one in-memory snippet under a virtual repo path."""
    return run_lint([SourceFile(rel, code)], select=select)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestCatalog:
    def test_at_least_ten_rules(self):
        assert len(all_rules()) >= 10

    def test_ids_unique_and_documented(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(set(ids)) == len(ids)
        for r in rules:
            assert r.id.startswith("REPRO")
            assert r.name
            assert r.description

    def test_repo_is_clean(self):
        findings = lint_paths(
            ["src", "tests", "benchmarks", "tools"], root=REPO
        )
        assert findings == [], render_text(findings)


class TestUnseededRng:
    def test_flags_stdlib_random(self):
        code = "import random\nx = random.randint(0, 5)\n"
        assert rule_ids(lint(code)) == ["REPRO101"]

    def test_flags_legacy_numpy_global(self):
        code = "import numpy as np\nx = np.random.rand(3)\n"
        assert rule_ids(lint(code)) == ["REPRO101"]

    def test_flags_seedless_default_rng(self):
        code = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rule_ids(lint(code)) == ["REPRO101"]

    def test_passes_seeded_generator(self):
        code = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1995)\n"
            "x = rng.integers(0, 5, size=3)\n"
        )
        assert lint(code) == []

    def test_out_of_scope_path_passes(self):
        code = "import random\nx = random.random()\n"
        assert lint(code, rel="benchmarks/bench_x.py") == []


class TestWallClock:
    def test_flags_perf_counter(self):
        code = "import time\nt = time.perf_counter()\n"
        assert rule_ids(lint(code)) == ["REPRO102"]

    def test_flags_from_import_alias(self):
        code = "from time import perf_counter\nt = perf_counter()\n"
        assert rule_ids(lint(code)) == ["REPRO102"]

    def test_flags_datetime_now(self):
        code = "import datetime\nt = datetime.datetime.now()\n"
        assert rule_ids(lint(code)) == ["REPRO102"]

    def test_passes_outside_sim_paths(self):
        code = "import time\nt = time.perf_counter()\n"
        assert lint(code, rel="src/repro/analysis/report.py") == []

    def test_passes_time_arithmetic(self):
        code = "def _f(t0, t1):\n    return t1 - t0\n"
        assert lint(code) == []


class TestFloatEquality:
    def test_flags_float_literal_equality(self):
        code = "def _f(x):\n    return x == 1.5\n"
        assert rule_ids(lint(code)) == ["REPRO103"]

    def test_flags_float_cast_inequality(self):
        code = "def _f(a, b):\n    return float(a) != b\n"
        assert rule_ids(lint(code)) == ["REPRO103"]

    def test_passes_integer_equality(self):
        code = "def _f(x):\n    return x == 1\n"
        assert lint(code) == []

    def test_passes_tolerance_compare(self):
        code = "def _f(a, b):\n    return abs(a - b) <= 1e-9\n"
        assert lint(code) == []

    def test_passes_float_ordering(self):
        code = "def _f(x):\n    return x < 1.5\n"
        assert lint(code) == []


class TestMutableDefault:
    def test_flags_list_literal_default(self):
        code = "def _f(xs=[]):\n    return xs\n"
        assert rule_ids(lint(code)) == ["REPRO104"]

    def test_flags_numpy_array_default(self):
        code = "import numpy as np\ndef _f(a=np.zeros(3)):\n    return a\n"
        assert rule_ids(lint(code)) == ["REPRO104"]

    def test_flags_kwonly_dict_default(self):
        code = "def _f(*, opts={}):\n    return opts\n"
        assert rule_ids(lint(code)) == ["REPRO104"]

    def test_passes_none_default(self):
        code = (
            "def _f(xs=None):\n"
            "    return list(xs) if xs is not None else []\n"
        )
        assert lint(code) == []

    def test_passes_tuple_default(self):
        code = "def _f(xs=()):\n    return xs\n"
        assert lint(code) == []


class TestSetIteration:
    def test_flags_for_over_set_literal(self):
        code = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rule_ids(lint(code)) == ["REPRO105"]

    def test_flags_comprehension_over_set_call(self):
        code = "def _f(items):\n    return [y for y in set(items)]\n"
        assert rule_ids(lint(code)) == ["REPRO105"]

    def test_passes_sorted_set(self):
        code = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert lint(code) == []

    def test_passes_list_iteration(self):
        code = "for x in [1, 2, 3]:\n    print(x)\n"
        assert lint(code) == []


class TestUnsortedWalk:
    def test_flags_unsorted_glob(self):
        code = (
            "from pathlib import Path\n"
            "for p in Path('.').glob('*.py'):\n"
            "    print(p)\n"
        )
        assert rule_ids(lint(code)) == ["REPRO106"]

    def test_flags_os_listdir(self):
        code = "import os\nnames = [n for n in os.listdir('.')]\n"
        assert rule_ids(lint(code)) == ["REPRO106"]

    def test_passes_sorted_glob(self):
        code = (
            "from pathlib import Path\n"
            "for p in sorted(Path('.').glob('*.py')):\n"
            "    print(p)\n"
        )
        assert lint(code) == []


class TestPoolClosure:
    def test_flags_lambda_to_run_grid(self):
        code = (
            "from repro.experiments.runner import run_grid\n"
            "rows = run_grid(lambda **kw: kw, [dict(a=1)])\n"
        )
        assert rule_ids(lint(code)) == ["REPRO107"]

    def test_flags_nested_function(self):
        code = (
            "from repro.experiments.runner import run_grid\n"
            "def _sweep():\n"
            "    def point(a):\n"
            "        return a\n"
            "    return run_grid(point, [dict(a=1)])\n"
        )
        assert rule_ids(lint(code)) == ["REPRO107"]

    def test_passes_module_level_function(self):
        code = (
            "from repro.experiments.runner import run_grid\n"
            "def _point(a):\n"
            "    return a\n"
            "def _sweep():\n"
            "    return run_grid(_point, [dict(a=1)])\n"
        )
        assert lint(code) == []


class TestCacheOpaqueKwarg:
    REL = "src/repro/experiments/snippet.py"

    def test_flags_set_valued_kwarg(self):
        code = (
            "from .runner import run_grid\n"
            "rows = run_grid(point, [{'ks': {1, 2}}])\n"
        )
        assert rule_ids(lint(code, rel=self.REL)) == ["REPRO108"]

    def test_flags_lambda_in_dict_call(self):
        code = (
            "from .runner import run_grid\n"
            "rows = run_grid(point, [dict(fn=lambda x: x)])\n"
        )
        assert rule_ids(lint(code, rel=self.REL)) == ["REPRO108"]

    def test_flags_comprehension_points(self):
        code = (
            "from .runner import run_grid\n"
            "rows = run_grid(point, [{'ks': {k}} for k in range(3)])\n"
        )
        assert rule_ids(lint(code, rel=self.REL)) == ["REPRO108"]

    def test_passes_canonical_kwargs(self):
        code = (
            "from .runner import run_grid\n"
            "rows = run_grid(point, [{'ks': (1, 2), 'n': 64}])\n"
        )
        assert lint(code, rel=self.REL) == []


class TestTelemetryTimedPath:
    REL = "benchmarks/bench_snippet.py"

    def test_flags_telemetry_true(self):
        code = (
            "from repro.simulator import simulate_scatter\n"
            "r = simulate_scatter(m, addr, telemetry=True)\n"
        )
        assert rule_ids(lint(code, rel=self.REL)) == ["REPRO109"]

    def test_flags_simtelemetry_construction(self):
        code = (
            "from repro.simulator import SimTelemetry\n"
            "t = SimTelemetry(busy, qhw, {})\n"
        )
        assert rule_ids(lint(code, rel=self.REL)) == ["REPRO109"]

    def test_passes_telemetry_off(self):
        code = (
            "from repro.simulator import simulate_scatter\n"
            "r = simulate_scatter(m, addr, telemetry=False)\n"
        )
        assert lint(code, rel=self.REL) == []

    def test_passes_outside_benchmarks(self):
        code = "r = simulate_scatter(m, addr, telemetry=True)\n"
        assert lint(code, rel="src/repro/analysis/diag.py") == []


BANKSIM_OK = """\
def simulate_scatter(machine, addresses, bank_map=None,
                     assignment='round_robin', telemetry=False,
                     sanitize=None):
    pass

def simulate_gather(machine, addresses, bank_map=None,
                    assignment='round_robin', telemetry=False,
                    sanitize=None):
    pass

def simulate_scatter_blocked(machine, addresses, superstep_size,
                             bank_map=None, assignment='round_robin',
                             telemetry=False, sanitize=None):
    pass
"""

CYCLE_OK = """\
def simulate_scatter_cycle(machine, addresses, bank_map=None,
                           assignment='round_robin', max_cycles=None,
                           engine='event', telemetry=False, sanitize=None):
    pass
"""

BATCH_OK = """\
def simulate_scatter_batch(machine, addresses, bank_map=None,
                           assignment='round_robin', max_cycles=None,
                           telemetry=False, sanitize=None):
    pass
"""

DISPATCH_OK = """\
def simulate_scatter_engine(machine, addresses, bank_map=None,
                            assignment='round_robin', telemetry=False,
                            sanitize=None, engine='banksim'):
    pass
"""


class TestEngineParity:
    BANKSIM = "src/repro/simulator/banksim.py"
    CYCLE = "src/repro/simulator/cycle.py"
    BATCH = "src/repro/simulator/cycle_batch.py"
    DISPATCH = "src/repro/simulator/dispatch.py"

    def _lint(self, banksim_src, cycle_src, batch_src=BATCH_OK,
              dispatch_src=DISPATCH_OK):
        files = [
            SourceFile(self.BANKSIM, banksim_src),
            SourceFile(self.CYCLE, cycle_src),
            SourceFile(self.BATCH, batch_src),
            SourceFile(self.DISPATCH, dispatch_src),
        ]
        return run_lint(files, select=["REPRO110"])

    def test_passes_canonical_signatures(self):
        assert self._lint(BANKSIM_OK, CYCLE_OK) == []

    def test_flags_default_drift(self):
        drifted = CYCLE_OK.replace("telemetry=False", "telemetry=True")
        findings = self._lint(BANKSIM_OK, drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "telemetry" in findings[0].message

    def test_flags_missing_canonical_parameter(self):
        drifted = CYCLE_OK.replace(", sanitize=None", "")
        findings = self._lint(BANKSIM_OK, drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "sanitize" in findings[0].message

    def test_flags_missing_entry_point(self):
        drifted = BANKSIM_OK.replace("def simulate_gather", "def sim_gather")
        findings = self._lint(drifted, CYCLE_OK)
        assert rule_ids(findings) == ["REPRO110"]
        assert "simulate_gather" in findings[0].message

    def test_flags_unknown_extra_parameter(self):
        drifted = CYCLE_OK.replace("max_cycles=None", "budget=None")
        findings = self._lint(BANKSIM_OK, drifted)
        assert rule_ids(findings) == ["REPRO110"]

    def test_flags_batch_engine_drift(self):
        # The batch engine is held to the same canonical surface.
        drifted = BATCH_OK.replace("sanitize=None", "sanitize=True")
        findings = self._lint(BANKSIM_OK, CYCLE_OK, drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "sanitize" in findings[0].message

    def test_flags_missing_batch_entry_point(self):
        drifted = BATCH_OK.replace("def simulate_scatter_batch",
                                   "def run_scatter_batch")
        findings = self._lint(BANKSIM_OK, CYCLE_OK, drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "simulate_scatter_batch" in findings[0].message

    def test_flags_dispatcher_drift(self):
        # The engine dispatcher is a parity entry point like the engines
        # it routes to; `engine=` is its one allowed extra.
        drifted = DISPATCH_OK.replace("assignment='round_robin'",
                                      "assignment='block'")
        findings = self._lint(BANKSIM_OK, CYCLE_OK, dispatch_src=drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "assignment" in findings[0].message

    def test_flags_missing_dispatcher_entry_point(self):
        drifted = DISPATCH_OK.replace("def simulate_scatter_engine",
                                      "def route_engine")
        findings = self._lint(BANKSIM_OK, CYCLE_OK, dispatch_src=drifted)
        assert rule_ids(findings) == ["REPRO110"]
        assert "simulate_scatter_engine" in findings[0].message

    def test_silent_when_engines_not_linted(self):
        # Linting only test files must not fabricate parity findings.
        assert lint("x = 1\n", rel="tests/test_x.py", select=["REPRO110"]) == []


class TestBroadExcept:
    def test_flags_except_exception(self):
        code = (
            "try:\n    f()\n"
            "except Exception:\n    x = 1\n"
        )
        assert rule_ids(lint(code)) == ["REPRO111"]

    def test_flags_bare_except(self):
        code = "try:\n    f()\nexcept:\n    x = 1\n"
        assert rule_ids(lint(code)) == ["REPRO111"]

    def test_flags_broad_tuple(self):
        code = (
            "try:\n    f()\n"
            "except (ValueError, Exception):\n    x = 1\n"
        )
        assert rule_ids(lint(code)) == ["REPRO111"]

    def test_passes_narrow_except(self):
        code = "try:\n    f()\nexcept ValueError:\n    x = 1\n"
        assert lint(code) == []

    def test_passes_reraise(self):
        code = (
            "try:\n    f()\n"
            "except Exception:\n    cleanup()\n    raise\n"
        )
        assert lint(code) == []


class TestSilentHandler:
    def test_flags_pass_only_handler(self):
        code = "try:\n    f()\nexcept OSError:\n    pass\n"
        assert rule_ids(lint(code)) == ["REPRO112"]

    def test_flags_continue_only_handler(self):
        code = (
            "for x in xs:\n"
            "    try:\n        f(x)\n"
            "    except OSError:\n        continue\n"
        )
        assert rule_ids(lint(code)) == ["REPRO112"]

    def test_passes_handler_with_accounting(self):
        code = (
            "try:\n    f()\n"
            "except OSError:\n    errors += 1\n"
        )
        assert lint(code) == []


class TestPublicDocstring:
    def test_flags_undocumented_public_function(self):
        code = "def served(x):\n    return x\n"
        findings = lint(code, select=["REPRO113"])
        assert rule_ids(findings) == ["REPRO113"]
        assert "`served`" in findings[0].message

    def test_flags_undocumented_public_class_and_method(self):
        code = (
            "class Service:\n"
            "    def submit(self, r):\n"
            "        return r\n"
        )
        findings = lint(code, select=["REPRO113"])
        assert [f.message for f in findings] == [
            "public class `Service` has no docstring",
            "public method `Service.submit` has no docstring",
        ]

    def test_passes_documented_api(self):
        code = (
            'class Service:\n'
            '    """Answers requests."""\n'
            '\n'
            '    def submit(self, r):\n'
            '        """Admit one request."""\n'
            '        return r\n'
            '\n'
            'def served(x):\n'
            '    """Count served requests."""\n'
            '    return x\n'
        )
        assert lint(code, select=["REPRO113"]) == []

    def test_passes_private_names(self):
        code = (
            "def _helper(x):\n    return x\n"
            "class _Impl:\n"
            "    def run(self):\n        return 1\n"
        )
        assert lint(code, select=["REPRO113"]) == []

    def test_skips_function_nested_defs(self):
        code = (
            'def outer():\n'
            '    """Documented."""\n'
            '    def inner(a):\n'
            '        return a\n'
            '    return inner\n'
        )
        assert lint(code, select=["REPRO113"]) == []

    def test_out_of_scope_path_passes(self):
        code = "def served(x):\n    return x\n"
        assert lint(code, rel="tools/helper.py", select=["REPRO113"]) == []

    def test_line_suppression_works(self):
        code = (
            "def served(x):  # reprolint: disable=REPRO113 -- thin alias\n"
            "    return x\n"
        )
        assert lint(code, select=["REPRO113"]) == []


class TestUnboundedConcat:
    STREAM_PATH = "src/repro/simulator/stream.py"

    def test_flags_self_concatenate(self):
        code = (
            "import numpy as np\n"
            "def absorb(self, chunk):\n"
            "    self.seen = np.concatenate([self.seen, chunk])\n"
        )
        findings = lint(code, rel=self.STREAM_PATH, select=["REPRO114"])
        assert rule_ids(findings) == ["REPRO114"]
        assert "self.seen" in findings[0].message

    def test_flags_np_append_accumulation(self):
        code = (
            "import numpy as np\n"
            "def absorb(trace, chunk):\n"
            "    trace = np.append(trace, chunk)\n"
            "    return trace\n"
        )
        findings = lint(code, rel="src/repro/serving/service.py",
                        select=["REPRO114"])
        assert rule_ids(findings) == ["REPRO114"]

    def test_passes_bounded_union(self):
        # Concatenating two *other* arrays into a fresh name (and
        # pruning before reassigning) is the sanctioned pattern.
        code = (
            "import numpy as np\n"
            "def sweep(self, arrival):\n"
            "    events = np.concatenate([self.pend, arrival])\n"
            "    keep = events >= self.cut\n"
            "    self.pend = events[keep]\n"
        )
        assert lint(code, rel=self.STREAM_PATH, select=["REPRO114"]) == []

    def test_out_of_scope_path_passes(self):
        code = (
            "import numpy as np\n"
            "def grow(xs, x):\n"
            "    xs = np.concatenate([xs, x])\n"
            "    return xs\n"
        )
        assert lint(code, rel="src/repro/analysis/tables.py",
                    select=["REPRO114"]) == []

    def test_line_suppression_works(self):
        code = (
            "import numpy as np\n"
            "def absorb(self, chunk):\n"
            "    self.seen = np.concatenate([self.seen, chunk])"
            "  # reprolint: disable=REPRO114 -- bounded by max_chunk\n"
        )
        assert lint(code, rel=self.STREAM_PATH, select=["REPRO114"]) == []


class TestSuppressions:
    def test_line_pragma_suppresses(self):
        code = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=REPRO102 -- why\n"
        )
        assert lint(code) == []

    def test_line_pragma_is_rule_specific(self):
        code = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=REPRO103\n"
        )
        assert rule_ids(lint(code)) == ["REPRO102"]

    def test_disable_all_pragma(self):
        code = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=all\n"
        )
        assert lint(code) == []

    def test_file_pragma_suppresses_whole_file(self):
        code = (
            "# reprolint: disable-file=REPRO102\n"
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
        )
        assert lint(code) == []

    def test_file_pragma_only_in_first_ten_lines(self):
        code = "\n" * 11 + (
            "# reprolint: disable-file=REPRO102\n"
            "import time\n"
            "t = time.perf_counter()\n"
        )
        assert rule_ids(lint(code)) == ["REPRO102"]


class TestFramework:
    def test_select_and_ignore(self):
        code = (
            "import time\n"
            "t = time.perf_counter()\n"
            "def _f(xs=[]):\n"
            "    return xs\n"
        )
        assert rule_ids(lint(code)) == ["REPRO102", "REPRO104"]
        assert rule_ids(lint(code, select=["REPRO104"])) == ["REPRO104"]
        only = run_lint(
            [SourceFile(SRC_PATH, code)], ignore=["REPRO104"]
        )
        assert rule_ids(only) == ["REPRO102"]

    def test_findings_sorted_and_formatted(self):
        code = (
            "import time\n"
            "def _f(xs=[]):\n"
            "    return time.perf_counter()\n"
        )
        findings = lint(code)
        assert findings == sorted(
            findings, key=lambda fi: (fi.path, fi.line, fi.col, fi.rule)
        )
        line = findings[0].format()
        assert line.startswith(f"{SRC_PATH}:")
        assert findings[0].rule in line

    def test_render_text_and_json(self):
        findings = lint("import time\nt = time.perf_counter()\n")
        text = render_text(findings)
        assert "1 finding(s)" in text
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "REPRO102"
        assert render_text([]) == "reprolint: clean"

    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        files, errors = load_files([str(bad)], root=tmp_path)
        assert files == []
        assert [e.rule for e in errors] == ["REPRO000"]

    def test_missing_path_is_a_finding(self, tmp_path):
        files, errors = load_files(["nope"], root=tmp_path)
        assert files == []
        assert [e.rule for e in errors] == ["REPRO000"]


class TestCli:
    def _run(self, *args, cwd=REPO):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=cwd, capture_output=True, text=True,
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "ok.py").write_text("x = 1\n")
        proc = self._run(str(pkg), "--root", str(tmp_path), cwd=REPO)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "reprolint: clean" in proc.stdout

    def test_findings_exit_nonzero(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("def _f(xs=[]):\n    return xs\n")
        proc = self._run("src", "--root", str(tmp_path))
        assert proc.returncode == 1
        assert "REPRO104" in proc.stdout

    def test_json_format(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("def _f(xs=[]):\n    return xs\n")
        proc = self._run("src", "--root", str(tmp_path), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["count"] == 1

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rid in ("REPRO101", "REPRO110", "REPRO112"):
            assert rid in proc.stdout
