"""Tests for module-map contention analysis."""

import numpy as np
import pytest

from repro.core import DXBSPParams
from repro.errors import ParameterError
from repro.mapping import (
    RandomMap,
    ideal_scatter_time,
    linear_hash,
    module_map_ratio,
    module_map_time,
    ratio_vs_expansion,
)
from repro.workloads import broadcast, distinct_random

PARAMS = DXBSPParams(p=4, d=6, x=4, g=1, L=0)


class TestIdealTime:
    def test_throughput_bound(self):
        # Balanced: g*n/p dominates when banks can keep up.
        p = DXBSPParams(p=4, d=6, x=8)
        assert ideal_scatter_time(p, 3200, 1) == 3200 / 4

    def test_bank_bound(self):
        p = DXBSPParams(p=4, d=6, x=1)  # 4 banks
        # d * n/banks = 6 * 800 dominates g*n/p = 800.
        assert ideal_scatter_time(p, 3200, 1) == 6 * 800

    def test_contention_bound(self):
        assert ideal_scatter_time(PARAMS, 100, 100) == 600

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            ideal_scatter_time(PARAMS, 10, 11)
        with pytest.raises(ParameterError):
            ideal_scatter_time(PARAMS, 10, -1)


class TestModuleMapTime:
    def test_broadcast_equals_ideal(self):
        addr = broadcast(500, 3)
        t = module_map_time(PARAMS, addr, RandomMap(1))
        assert t == ideal_scatter_time(PARAMS, 500, 500)

    def test_ratio_at_least_one(self):
        addr = distinct_random(2048, 1 << 20, seed=0)
        assert module_map_ratio(PARAMS, addr, RandomMap(2)) >= 1.0

    def test_ratio_one_for_perfect_map(self):
        # A map that balances the pattern perfectly: round robin over
        # request order is impossible via address map, but a bijective
        # dense pattern + interleave achieves it.
        addr = np.arange(1600)
        from repro.mapping import InterleavedMap

        assert module_map_ratio(PARAMS, addr, InterleavedMap()) == 1.0


class TestRatioVsExpansion:
    def test_shapes_and_bounds(self):
        res = ratio_vs_expansion(
            PARAMS, n=2048, expansions=[1, 4, 16],
            mapping_factory=lambda s: linear_hash(s), trials=2, seed=0,
        )
        assert res.expansions.shape == (3,)
        assert (res.mean_ratio >= 1.0 - 1e-12).all()
        assert (res.max_ratio >= res.mean_ratio - 1e-12).all()
        assert len(res.rows()) == 3

    def test_high_expansion_ratio_near_one(self):
        res = ratio_vs_expansion(
            PARAMS, n=4096, expansions=[256],
            mapping_factory=lambda s: RandomMap(s), trials=3, seed=1,
        )
        # With 1024 banks and the throughput bound dominating, module-map
        # contention is fully hidden.
        assert res.mean_ratio[0] < 1.6

    def test_invalid_trials(self):
        with pytest.raises(ParameterError):
            ratio_vs_expansion(PARAMS, 10, [1], lambda s: RandomMap(s), trials=0)
