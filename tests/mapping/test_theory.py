"""Tests for the probabilistic bounds."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.mapping import (
    expected_max_load,
    hoeffding_tail,
    max_load_tail,
    max_load_whp,
    raghavan_spencer_tail,
)


class TestHoeffding:
    def test_decreasing_in_n(self):
        assert hoeffding_tail(100, 0.1) < hoeffding_tail(10, 0.1)

    def test_decreasing_in_t(self):
        assert hoeffding_tail(50, 0.2) < hoeffding_tail(50, 0.1)

    def test_t_zero_is_one(self):
        assert hoeffding_tail(10, 0.0) == 1.0

    def test_known_value(self):
        assert hoeffding_tail(100, 0.1) == pytest.approx(math.exp(-2.0))

    def test_invalid(self):
        with pytest.raises(ParameterError):
            hoeffding_tail(0, 0.1)
        with pytest.raises(ParameterError):
            hoeffding_tail(10, 0.1, spread=0)


class TestRaghavanSpencer:
    def test_in_unit_interval(self):
        for delta in [0.1, 1.0, 10.0]:
            b = raghavan_spencer_tail(5.0, delta)
            assert 0.0 < b < 1.0

    def test_decreasing_in_delta(self):
        deltas = np.array([0.5, 1.0, 2.0, 4.0])
        bounds = raghavan_spencer_tail(3.0, deltas)
        assert (np.diff(bounds) < 0).all()

    def test_decreasing_in_mu(self):
        assert raghavan_spencer_tail(10.0, 1.0) < raghavan_spencer_tail(1.0, 1.0)

    def test_no_overflow_large_delta(self):
        assert raghavan_spencer_tail(2.0, 1e6) == 0.0

    def test_invalid(self):
        with pytest.raises(ParameterError):
            raghavan_spencer_tail(0.0, 1.0)
        with pytest.raises(ParameterError):
            raghavan_spencer_tail(1.0, 0.0)

    def test_vectorized(self):
        out = raghavan_spencer_tail(1.0, np.array([1.0, 2.0]))
        assert out.shape == (2,)


class TestMaxLoadTail:
    def test_trivial_cases(self):
        assert max_load_tail(10, 4, 0) == 1.0
        assert max_load_tail(10, 4, 11) == 0.0

    def test_monotone_in_m(self):
        vals = [max_load_tail(100, 10, m) for m in range(1, 40)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_clipped_to_one(self):
        assert max_load_tail(1000, 1000, 1) <= 1.0

    def test_invalid(self):
        with pytest.raises(ParameterError):
            max_load_tail(-1, 4, 2)

    def test_empirical_calibration(self):
        # The union bound must over-cover: simulate and check.
        rng = np.random.default_rng(0)
        n, b = 1000, 32
        m = max_load_whp(n, b, failure_prob=0.01)
        exceed = 0
        trials = 200
        for _ in range(trials):
            loads = np.bincount(rng.integers(0, b, size=n), minlength=b)
            if loads.max() >= m:
                exceed += 1
        assert exceed / trials <= 0.01 + 0.02  # slack for sampling noise


class TestMaxLoadWhp:
    def test_at_least_mean(self):
        assert max_load_whp(1000, 10) >= 100

    def test_zero_balls(self):
        assert max_load_whp(0, 10) == 0

    def test_single_bin(self):
        # Deterministic: the load IS 50, so P(load >= 50) = 1 and the
        # smallest threshold the load stays below whp is 51.
        assert max_load_whp(50, 1) == 51

    def test_monotone_in_failure_prob(self):
        assert max_load_whp(1000, 32, 1e-6) >= max_load_whp(1000, 32, 1e-1)

    def test_invalid_prob(self):
        with pytest.raises(ParameterError):
            max_load_whp(10, 4, 0.0)

    @given(n=st.integers(1, 5000), b=st.integers(1, 256))
    def test_bounds_sane(self, n, b):
        m = max_load_whp(n, b, 1e-3)
        assert math.ceil(n / b) <= m <= n + 1


class TestExpectedMaxLoad:
    def test_zero(self):
        assert expected_max_load(0, 10) == 0.0

    def test_single_bin(self):
        assert expected_max_load(42, 1) == 42.0

    def test_heavy_regime_close_to_mean(self):
        est = expected_max_load(100_000, 16)
        assert 100_000 / 16 < est < 1.2 * 100_000 / 16

    def test_light_regime_small(self):
        est = expected_max_load(64, 4096)
        assert 1.0 <= est < 16

    def test_empirically_reasonable(self):
        rng = np.random.default_rng(1)
        n, b = 8192, 64
        est = expected_max_load(n, b)
        sample = np.mean([
            np.bincount(rng.integers(0, b, size=n), minlength=b).max()
            for _ in range(30)
        ])
        assert est == pytest.approx(sample, rel=0.25)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            expected_max_load(-1, 4)
