"""Tests for bank mappings and the universal hash families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.mapping import (
    HASH_FAMILIES,
    InterleavedMap,
    PolynomialHashMap,
    RandomMap,
    cubic_hash,
    hash_flop_count,
    linear_hash,
    quadratic_hash,
)


class TestInterleavedMap:
    def test_modulo(self):
        m = InterleavedMap()
        assert (m(np.arange(10), 4) == np.arange(10) % 4).all()

    def test_invalid_banks(self):
        with pytest.raises(MappingError):
            InterleavedMap()(np.arange(3), 0)

    def test_strided_pathology(self):
        # Power-of-two stride under interleaving: everything to one bank.
        m = InterleavedMap()
        addr = 16 * np.arange(100)
        assert np.unique(m(addr, 16)).size == 1


class TestRandomMap:
    def test_deterministic_per_seed(self):
        a = RandomMap(seed=1)(np.arange(100), 16)
        b = RandomMap(seed=1)(np.arange(100), 16)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomMap(seed=1)(np.arange(1000), 16)
        b = RandomMap(seed=2)(np.arange(1000), 16)
        assert (a != b).any()

    def test_range(self):
        out = RandomMap(seed=3)(np.arange(10_000), 7)
        assert out.min() >= 0 and out.max() < 7

    def test_roughly_uniform(self):
        out = RandomMap(seed=4)(np.arange(64_000), 16)
        loads = np.bincount(out, minlength=16)
        assert loads.min() > 0.8 * 64_000 / 16
        assert loads.max() < 1.2 * 64_000 / 16

    def test_non_power_of_two_banks_ok(self):
        out = RandomMap(seed=5)(np.arange(100), 10)
        assert out.max() < 10


class TestPolynomialHashMap:
    def test_factories_degrees(self):
        assert linear_hash(0).degree == 1
        assert quadratic_hash(0).degree == 2
        assert cubic_hash(0).degree == 3

    def test_names(self):
        assert linear_hash(0).name == "h1"
        assert quadratic_hash(0).name == "h2"
        assert cubic_hash(0).name == "h3"

    def test_range_and_dtype(self):
        h = linear_hash(1)
        out = h(np.arange(10_000), 64)
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < 64

    def test_requires_power_of_two_banks(self):
        with pytest.raises(MappingError):
            linear_hash(1)(np.arange(10), 12)

    def test_single_bank(self):
        out = linear_hash(1)(np.arange(10), 1)
        assert (out == 0).all()

    def test_even_coefficient_rejected(self):
        with pytest.raises(MappingError):
            PolynomialHashMap((4,))

    def test_coefficient_range_checked(self):
        with pytest.raises(MappingError):
            PolynomialHashMap((1 << 70,))
        with pytest.raises(MappingError):
            PolynomialHashMap((0,))

    def test_bad_u(self):
        with pytest.raises(MappingError):
            PolynomialHashMap((1,), u=65)

    def test_small_u_masks(self):
        h = PolynomialHashMap((5,), u=8)
        out = h(np.arange(256), 16)
        assert out.min() >= 0 and out.max() < 16

    def test_deterministic(self):
        h = PolynomialHashMap((12345,))
        a = h(np.arange(100), 8)
        b = h(np.arange(100), 8)
        assert (a == b).all()

    def test_linear_hash_balances_dense_range(self):
        # Multiplicative hashing of a dense range must spread well (it is
        # 2-universal); the max load should be within ~2.5x of the mean.
        h = linear_hash(7)
        out = h(np.arange(64_000, dtype=np.int64), 64)
        loads = np.bincount(out, minlength=64)
        assert loads.max() < 2.5 * 64_000 / 64

    @given(seed=st.integers(0, 100), degree=st.integers(1, 3))
    @settings(max_examples=15)
    def test_collision_rate_near_universal(self, seed, degree):
        # 2-universality: collision probability of two distinct keys about
        # 1/m.  Empirically: hash 2000 random pairs into 256 bins.
        rng = np.random.default_rng(seed)
        factory = [linear_hash, quadratic_hash, cubic_hash][degree - 1]
        h = factory(seed)
        xs = rng.integers(0, 1 << 60, size=2000, dtype=np.int64)
        ys = rng.integers(0, 1 << 60, size=2000, dtype=np.int64)
        distinct = xs != ys
        coll = (h(xs, 256) == h(ys, 256))[distinct].mean()
        assert coll < 4.0 / 256 + 0.02


class TestFlopCount:
    @pytest.mark.parametrize("deg,ops", [(1, 2), (2, 4), (3, 6)])
    def test_linear_in_degree(self, deg, ops):
        assert hash_flop_count(deg) == ops

    def test_invalid_degree(self):
        with pytest.raises(MappingError):
            hash_flop_count(0)

    def test_families_registry(self):
        assert set(HASH_FAMILIES) == {"h1", "h2", "h3"}
        for name, factory in HASH_FAMILIES.items():
            assert factory(0).name == name
