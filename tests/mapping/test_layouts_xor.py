"""Tests for layout helpers and the XOR-fold interleaving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bank_loads, max_bank_load
from repro.errors import MappingError, ParameterError, PatternError
from repro.mapping import (
    XorFoldMap,
    padded,
    padded_width,
    row_major,
    staggered,
)
from repro.simulator import simulate_scatter, toy_machine
from repro.workloads import strided, zipf_pattern


class TestLayouts:
    def test_row_major_values(self):
        out = row_major([0, 1], [3, 3], p=2, width=8)
        assert (out == [3, 11]).all()

    def test_staggered_values(self):
        out = staggered([0, 1], [3, 3], p=2, width=8)
        assert (out == [6, 7]).all()

    def test_padded_width(self):
        assert padded_width(8) == 9
        assert padded_width(7) == 7
        with pytest.raises(ParameterError):
            padded_width(0)

    def test_padded_values(self):
        out = padded([0, 1], [0, 0], p=2, width=8)
        assert (out == [0, 9]).all()

    @given(
        p=st.integers(1, 8),
        width=st.integers(1, 64),
        seed=st.integers(0, 100),
        layout=st.sampled_from([row_major, staggered, padded]),
    )
    @settings(max_examples=25)
    def test_layouts_injective(self, p, width, seed, layout):
        # Distinct (proc, slot) pairs map to distinct addresses.
        rng = np.random.default_rng(seed)
        procs, slots = np.meshgrid(np.arange(p), np.arange(width))
        addr = layout(procs.ravel(), slots.ravel(), p=p, width=width)
        assert np.unique(addr).size == p * width

    def test_validation(self):
        with pytest.raises(PatternError):
            row_major([0], [9], p=2, width=8)  # slot out of range
        with pytest.raises(PatternError):
            row_major([2], [0], p=2, width=8)  # proc out of range
        with pytest.raises(PatternError):
            row_major([0, 1], [0], p=2, width=8)  # shape mismatch

    def test_hot_slot_bank_spread(self):
        # The motivating fact: same hot slot from all processors.
        p, width, banks = 8, 512, 128
        procs = np.arange(p)
        hot = np.full(p, 37)
        rm = row_major(procs, hot, p=p, width=width)
        stg = staggered(procs, hot, p=p, width=width)
        pad = padded(procs, hot, p=p, width=width)
        assert np.unique(rm % banks).size == 1     # all on one bank!
        assert np.unique(stg % banks).size == p    # spread over p banks
        assert np.unique(pad % banks).size == p    # padding also spreads

    def test_end_to_end_speedup(self):
        # Simulated: the staggered layout beats row-major on skewed keys.
        m = toy_machine(p=8, x=16, d=14)
        n, width = 16 * 1024, 512
        keys = zipf_pattern(n, width, alpha=1.4, seed=3)
        procs = np.arange(n) % 8
        t_rm = simulate_scatter(m, row_major(procs, keys, 8, width)).time
        t_st = simulate_scatter(m, staggered(procs, keys, 8, width)).time
        assert t_st < t_rm / 2


class TestXorFoldMap:
    def test_range_and_determinism(self):
        m = XorFoldMap()
        out = m(np.arange(10_000), 64)
        assert out.min() >= 0 and out.max() < 64
        assert (out == m(np.arange(10_000), 64)).all()

    def test_requires_power_of_two(self):
        with pytest.raises(MappingError):
            XorFoldMap()(np.arange(4), 12)

    def test_single_bank(self):
        assert (XorFoldMap()(np.arange(5), 1) == 0).all()

    def test_unit_stride_balanced(self):
        loads = bank_loads(np.arange(64 * 64), 64, XorFoldMap())
        assert loads.max() == loads.min()

    def test_breaks_bank_count_stride(self):
        # stride == n_banks is pathological under plain interleaving but
        # spread by the fold (the second field varies).
        banks = 64
        addr = strided(4096, banks)
        plain = max_bank_load(addr, banks)
        folded = max_bank_load(addr, banks, XorFoldMap())
        assert plain == 4096
        assert folded <= 4096 / banks * 2

    def test_adversarial_collisions_exist(self):
        # Unlike the universal families, the fixed fold is invertible by
        # an adversary: addresses with equal folded fields collide.
        banks = 16  # m = 4 bits
        # addresses k * (2^4 + 1) have both fields equal -> bank = 0
        addr = np.arange(256) * 17
        folded = XorFoldMap()(addr, banks)
        assert np.unique(folded).size < 16
