"""Tests for the instrumented SpMV and its workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.algorithms import CSRMatrix, dense_column_csr, random_csr, spmv
from repro.core import max_location_contention
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder


class TestCSRMatrix:
    def test_valid_construction(self):
        m = CSRMatrix(
            indptr=np.array([0, 2, 3]),
            indices=np.array([0, 1, 2]),
            data=np.array([1.0, 2.0, 3.0]),
            shape=(2, 3),
        )
        assert m.nnz == 3
        assert (m.row_ids() == [0, 0, 1]).all()

    @pytest.mark.parametrize(
        "indptr,indices,shape",
        [
            (np.array([0, 2]), np.array([0, 1]), (2, 3)),     # indptr short
            (np.array([1, 2, 2]), np.array([0]), (2, 3)),     # not from 0
            (np.array([0, 2, 1]), np.array([0]), (2, 3)),     # decreasing
            (np.array([0, 1, 2]), np.array([0]), (2, 3)),     # nnz mismatch
            (np.array([0, 1, 2]), np.array([0, 3]), (2, 3)),  # col range
        ],
    )
    def test_invalid_construction(self, indptr, indices, shape):
        with pytest.raises((PatternError, ParameterError)):
            CSRMatrix(indptr=indptr, indices=indices,
                      data=np.ones(indices.size), shape=shape)

    def test_to_dense_accumulates_duplicates(self):
        m = CSRMatrix(
            indptr=np.array([0, 2]),
            indices=np.array([1, 1]),
            data=np.array([2.0, 3.0]),
            shape=(1, 2),
        )
        assert m.to_dense()[0, 1] == 5.0

    def test_max_column_count(self):
        m = dense_column_csr(100, 50, 2, dense_len=30, seed=0)
        assert m.max_column_count() >= 30


class TestGenerators:
    def test_random_csr_shape(self):
        m = random_csr(10, 20, 3, seed=1)
        assert m.shape == (10, 20)
        assert m.nnz == 30
        assert (np.diff(m.indptr) == 3).all()

    def test_random_csr_zero_nnz(self):
        m = random_csr(5, 5, 0, seed=1)
        assert m.nnz == 0

    def test_dense_column_lengths(self):
        m = dense_column_csr(100, 100, 2, dense_len=40, dense_col=7, seed=2)
        col_count = np.bincount(m.indices, minlength=100)[7]
        assert col_count >= 40
        assert (np.diff(m.indptr)[:40] == 3).all()
        assert (np.diff(m.indptr)[40:] == 2).all()

    def test_dense_column_zero_len(self):
        m = dense_column_csr(10, 10, 2, dense_len=0, seed=3)
        assert m.nnz == 20

    def test_dense_column_full_len(self):
        m = dense_column_csr(10, 10, 1, dense_len=10, dense_col=0, seed=4)
        assert np.bincount(m.indices, minlength=10)[0] >= 10

    @pytest.mark.parametrize("kwargs", [
        dict(n_rows=10, n_cols=10, nnz_per_row=1, dense_len=11),
        dict(n_rows=10, n_cols=10, nnz_per_row=1, dense_len=1, dense_col=10),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            dense_column_csr(**kwargs)


class TestSpmv:
    @given(
        n_rows=st.integers(1, 60),
        n_cols=st.integers(1, 60),
        nnz=st.integers(0, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25)
    def test_matches_scipy(self, n_rows, n_cols, nnz, seed):
        m = random_csr(n_rows, n_cols, nnz, seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n_cols)
        ref = sparse.csr_matrix(
            (m.data, m.indices, m.indptr), shape=m.shape
        ) @ x
        assert np.allclose(spmv(m, x), ref)

    def test_dense_column_correct(self):
        m = dense_column_csr(50, 40, 3, dense_len=20, seed=5)
        x = np.random.default_rng(5).standard_normal(40)
        assert np.allclose(spmv(m, x), m.to_dense() @ x)

    def test_wrong_x_shape(self):
        m = random_csr(4, 6, 2, seed=6)
        with pytest.raises(PatternError):
            spmv(m, np.zeros(5))

    def test_gather_contention_equals_column_count(self):
        m = dense_column_csr(200, 100, 2, dense_len=77, dense_col=3, seed=7)
        rec = TraceRecorder()
        spmv(m, np.zeros(100), recorder=rec)
        gather = [s for s in rec.program if s.label == "spmv/gather-x"][0]
        assert gather.stats().max_location_contention == m.max_column_count()

    def test_result_write_contention_free(self):
        m = random_csr(64, 64, 2, seed=8)
        rec = TraceRecorder()
        spmv(m, np.zeros(64), recorder=rec)
        write = [s for s in rec.program if s.label == "spmv/write-y"][0]
        assert write.stats().max_location_contention == 1

    def test_trace_total_requests(self):
        m = random_csr(32, 32, 4, seed=9)
        rec = TraceRecorder()
        spmv(m, np.zeros(32), recorder=rec)
        # cols + gather + vals + segsum + y = 4*nnz + n_rows
        assert rec.program.total_requests == 4 * m.nnz + 32
