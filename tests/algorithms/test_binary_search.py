"""Tests for QRQW/EREW binary search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    MIN_SENTINEL,
    build_implicit_tree,
    erew_binary_search,
    qrqw_binary_search,
    replication_schedule,
)
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder


def oracle(keys, queries):
    if keys.size == 0:
        return np.full(len(queries), MIN_SENTINEL, dtype=np.int64)
    ranks = np.searchsorted(keys, queries, side="right")
    return np.where(ranks > 0, keys[np.maximum(ranks - 1, 0)], MIN_SENTINEL)


class TestBuildTree:
    def test_padded_to_full(self):
        tree = build_implicit_tree(np.arange(5))
        assert tree.size == 7

    def test_exact_full(self):
        tree = build_implicit_tree(np.arange(7))
        assert tree.size == 7
        assert tree[0] == 3  # root = median

    def test_empty(self):
        tree = build_implicit_tree(np.zeros(0, dtype=np.int64))
        assert tree.size == 1

    def test_single(self):
        tree = build_implicit_tree(np.array([42]))
        assert tree[0] == 42

    def test_unsorted_rejected(self):
        with pytest.raises(PatternError):
            build_implicit_tree(np.array([2, 1]))

    def test_bst_property(self):
        tree = build_implicit_tree(np.arange(15))
        # in-order traversal of the implicit tree yields sorted keys
        def inorder(i):
            if i >= tree.size:
                return []
            return inorder(2 * i + 1) + [tree[i]] + inorder(2 * i + 2)
        vals = [v for v in inorder(0) if v != np.iinfo(np.int64).max]
        assert vals == list(range(15))


class TestReplicationSchedule:
    def test_decreasing_with_depth(self):
        c = replication_schedule(4096, 8, target_contention=4)
        assert (np.diff(c) <= 0).all()
        assert c.min() >= 1

    def test_root_copies(self):
        c = replication_schedule(1024, 5, target_contention=8)
        assert c[0] == 128  # n / tau

    def test_invalid(self):
        with pytest.raises(ParameterError):
            replication_schedule(10, 0)
        with pytest.raises(ParameterError):
            replication_schedule(10, 3, target_contention=0)


class TestSearchCorrectness:
    @given(
        m=st.integers(0, 300),
        nq=st.integers(0, 200),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30)
    def test_both_match_oracle(self, m, nq, seed):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.integers(0, 1 << 20, size=m, dtype=np.int64))
        queries = rng.integers(0, 1 << 20, size=nq, dtype=np.int64)
        tree = build_implicit_tree(keys)
        expect = oracle(keys, queries)
        assert np.array_equal(qrqw_binary_search(tree, queries, seed=seed),
                              expect)
        assert np.array_equal(erew_binary_search(keys, queries), expect)

    def test_query_below_all_keys(self):
        keys = np.array([10, 20, 30])
        tree = build_implicit_tree(keys)
        assert qrqw_binary_search(tree, np.array([5]))[0] == MIN_SENTINEL
        assert erew_binary_search(keys, np.array([5]))[0] == MIN_SENTINEL

    def test_exact_hits(self):
        keys = np.array([10, 20, 30])
        tree = build_implicit_tree(keys)
        out = qrqw_binary_search(tree, np.array([10, 20, 30]))
        assert (out == [10, 20, 30]).all()

    def test_duplicate_keys(self):
        keys = np.array([5, 5, 5, 9])
        tree = build_implicit_tree(keys)
        q = np.array([5, 7, 9])
        assert np.array_equal(qrqw_binary_search(tree, q), oracle(keys, q))

    def test_bad_tree_size(self):
        with pytest.raises(PatternError):
            qrqw_binary_search(np.arange(6), np.array([1]))


class TestSearchTraces:
    def test_qrqw_trace_contention_bounded(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.integers(0, 1 << 20, size=1023, dtype=np.int64))
        tree = build_implicit_tree(keys)
        queries = rng.integers(0, 1 << 20, size=4096, dtype=np.int64)
        rec = TraceRecorder()
        qrqw_binary_search(tree, queries, target_contention=8, seed=2,
                           recorder=rec)
        worst = max(s.stats().max_location_contention for s in rec.program)
        # Expected contention tau=8; whp well under n.
        assert worst <= 64
        assert len(rec.program) == 10  # one gather per level

    def test_unreplicated_root_would_be_hot(self):
        # Sanity contrast: with tau = n there is a single copy per node and
        # the root-level step has contention ~n.
        rng = np.random.default_rng(3)
        keys = np.sort(rng.integers(0, 1 << 20, size=255, dtype=np.int64))
        tree = build_implicit_tree(keys)
        queries = rng.integers(0, 1 << 20, size=512, dtype=np.int64)
        rec = TraceRecorder()
        qrqw_binary_search(tree, queries, target_contention=512, seed=4,
                           recorder=rec)
        root_step = rec.program[0]
        assert root_step.stats().max_location_contention == 512

    def test_erew_trace_contention_free(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.integers(0, 1 << 16, size=256, dtype=np.int64))
        queries = rng.integers(0, 1 << 16, size=512, dtype=np.int64)
        rec = TraceRecorder()
        erew_binary_search(keys, queries, recorder=rec)
        for step in rec.program:
            if "histogram" in step.label:
                continue  # private histograms: bounded per-proc counts
            assert step.stats().max_location_contention <= 2, step.label

    def test_erew_trace_includes_sort_and_merge(self):
        rec = TraceRecorder()
        erew_binary_search(
            np.arange(64, dtype=np.int64),
            np.arange(64, dtype=np.int64),
            recorder=rec,
        )
        labels = [s.label for s in rec.program]
        assert any("radix" in l for l in labels)
        assert any("merge" in l for l in labels)
        assert any("unpermute" in l for l in labels)
