"""Tests for list ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import list_rank, random_list
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder


class TestListRank:
    @given(n=st.integers(1, 500), seed=st.integers(0, 200))
    @settings(max_examples=25)
    def test_matches_sequential(self, n, seed):
        succ, order = random_list(n, seed=seed)
        ranks = list_rank(succ)
        # order[i] is at distance n-1-i from the tail
        assert np.array_equal(ranks[order], np.arange(n - 1, -1, -1))

    def test_single_node(self):
        assert list_rank(np.array([0]))[0] == 0

    def test_two_lists(self):
        # 0 -> 1 -> 1 (tail), 2 -> 3 -> 3 (tail)
        succ = np.array([1, 1, 3, 3])
        assert (list_rank(succ) == [1, 0, 1, 0]).all()

    def test_cycle_detected(self):
        succ = np.array([1, 0])
        with pytest.raises(PatternError, match="cycle"):
            list_rank(succ)

    def test_out_of_range(self):
        with pytest.raises(PatternError):
            list_rank(np.array([5]))

    def test_empty(self):
        assert list_rank(np.zeros(0, dtype=np.int64)).size == 0

    def test_logarithmic_rounds_recorded(self):
        succ, _ = random_list(1024, seed=1)
        rec = TraceRecorder()
        list_rank(succ, recorder=rec)
        # 2 records per round, ~lg n + 1 rounds.
        rounds = len(rec.program) // 2
        assert rounds <= 13

    def test_tail_becomes_hot(self):
        # After a few jump rounds many nodes point at the tail: gather
        # contention grows — the contention signature of pointer jumping.
        succ, _ = random_list(512, seed=2)
        rec = TraceRecorder()
        list_rank(succ, recorder=rec)
        conts = [
            s.stats().max_location_contention
            for s in rec.program if "read-succ" in s.label
        ]
        assert conts[-1] > conts[0]
        assert max(conts) >= 128


class TestRandomList:
    def test_structure(self):
        succ, order = random_list(100, seed=3)
        tail = order[-1]
        assert succ[tail] == tail
        # every non-tail node has a unique successor
        non_tail = np.delete(np.arange(100), tail)
        assert np.unique(succ[non_tail]).size == 99

    def test_invalid(self):
        with pytest.raises(ParameterError):
            random_list(0)
