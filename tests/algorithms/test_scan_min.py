"""Tests for the min scan op (and identity handling across ops)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import (
    exclusive_scan,
    inclusive_scan,
    segmented_exclusive_scan,
    segmented_inclusive_scan,
)

int_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(1, 200),
    elements=st.integers(-1000, 1000),
)


class TestMinScan:
    def test_inclusive(self):
        assert (inclusive_scan(np.array([3, 1, 4]), "min") == [3, 1, 1]).all()

    def test_exclusive_identity_head(self):
        out = exclusive_scan(np.array([3, 1, 4]), "min")
        assert out[0] == np.iinfo(np.int64).max
        assert (out[1:] == [3, 1]).all()

    def test_float_identity(self):
        out = exclusive_scan(np.array([2.5, 1.0]), "min")
        assert out[0] == np.inf

    @given(int_arrays)
    def test_min_is_negated_max(self, v):
        got = inclusive_scan(v, "min")
        ref = -inclusive_scan(-v, "max")
        assert np.array_equal(got, ref)

    @given(int_arrays, st.integers(1, 6))
    @settings(max_examples=25)
    def test_segmented_min_matches_reference(self, v, nseg):
        seg = np.sort(np.arange(v.size) % nseg)
        got = segmented_inclusive_scan(v, seg, "min")
        # reference: per-segment running min
        ref = np.empty_like(v)
        for s in np.unique(seg):
            mask = seg == s
            ref[mask] = np.minimum.accumulate(v[mask])
        assert np.array_equal(got, ref)

    def test_segmented_exclusive_min_heads(self):
        v = np.array([5, 3, 7, 2])
        seg = np.array([0, 0, 1, 1])
        out = segmented_exclusive_scan(v, seg, "min")
        big = np.iinfo(np.int64).max
        assert (out == [big, 5, big, 7]).all()

    def test_min_scan_on_negatives(self):
        v = np.array([-5, -10, -1])
        assert (inclusive_scan(v, "min") == [-5, -10, -10]).all()
