"""Tests for queued-tournament maximum finding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import (
    erew_maximum,
    qrqw_maximum,
    tournament_rounds,
)
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder

nonempty = hnp.arrays(
    dtype=np.int64, shape=st.integers(1, 500),
    elements=st.integers(-10_000, 10_000),
)


class TestTournamentRounds:
    @pytest.mark.parametrize("n,f,expect", [
        (1, 2, 0), (2, 2, 1), (8, 2, 3), (9, 2, 4),
        (64, 8, 2), (65, 8, 3), (0, 4, 0),
    ])
    def test_values(self, n, f, expect):
        assert tournament_rounds(n, f) == expect

    def test_invalid(self):
        with pytest.raises(ParameterError):
            tournament_rounds(4, 1)
        with pytest.raises(ParameterError):
            tournament_rounds(-1, 2)


class TestCorrectness:
    @given(nonempty, st.sampled_from([2, 3, 8, 64]))
    @settings(max_examples=30)
    def test_qrqw_matches_numpy(self, values, fan_in):
        assert qrqw_maximum(values, fan_in) == values.max()

    @given(nonempty)
    @settings(max_examples=25)
    def test_erew_matches_numpy(self, values):
        assert erew_maximum(values) == values.max()

    def test_floats(self):
        v = np.array([0.5, -1.25, 3.75, 2.0])
        assert qrqw_maximum(v, 3) == 3.75
        assert erew_maximum(v) == 3.75

    def test_single_element(self):
        assert qrqw_maximum(np.array([42]), 4) == 42

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            qrqw_maximum(np.zeros(0))
        with pytest.raises(PatternError):
            erew_maximum(np.zeros(0))

    def test_bad_fan_in(self):
        with pytest.raises(ParameterError):
            qrqw_maximum(np.array([1, 2]), fan_in=1)


class TestTraces:
    def test_qrqw_round_count_and_contention(self):
        rec = TraceRecorder()
        n, f = 4096, 8
        qrqw_maximum(np.arange(n), fan_in=f, recorder=rec)
        assert len(rec.program) == tournament_rounds(n, f)
        # Full groups have contention exactly fan_in.
        assert rec.program[0].stats().max_location_contention == f

    def test_erew_trace_contention_free(self):
        rec = TraceRecorder()
        erew_maximum(np.arange(1000), recorder=rec)
        for step in rec.program:
            assert step.stats().max_location_contention == 1

    def test_fan_in_trades_rounds_for_contention(self):
        n = 1 << 12
        rec2, rec64 = TraceRecorder(), TraceRecorder()
        qrqw_maximum(np.arange(n), fan_in=2, recorder=rec2)
        qrqw_maximum(np.arange(n), fan_in=64, recorder=rec64)
        assert len(rec64.program) < len(rec2.program)
        k2 = max(s.stats().max_location_contention for s in rec2.program)
        k64 = max(s.stats().max_location_contention for s in rec64.program)
        assert k64 > k2
