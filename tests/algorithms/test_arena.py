"""Tests for the trace-address arena."""

import pytest

from repro.algorithms import Arena
from repro.errors import ParameterError


class TestArena:
    def test_disjoint_regions(self):
        a = Arena()
        b1 = a.alloc(100, "one")
        b2 = a.alloc(50, "two")
        assert b2 >= b1 + 100

    def test_alignment(self):
        a = Arena(align=64)
        a.alloc(10)
        b = a.alloc(10)
        assert b % 64 == 0

    def test_named_regions(self):
        a = Arena()
        base = a.alloc(10, "x")
        assert a.region("x") == (base, 10)

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            Arena().region("nope")

    def test_zero_size(self):
        a = Arena()
        base = a.alloc(0)
        assert base >= 0

    def test_used_monotone(self):
        a = Arena()
        a.alloc(5)
        u1 = a.used
        a.alloc(5)
        assert a.used > u1

    @pytest.mark.parametrize("kwargs", [dict(base=-1), dict(align=0)])
    def test_invalid_init(self, kwargs):
        with pytest.raises(ParameterError):
            Arena(**kwargs)

    def test_negative_size(self):
        with pytest.raises(ParameterError):
            Arena().alloc(-1)
