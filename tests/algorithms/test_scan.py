"""Tests for scan / segmented-scan primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import (
    exclusive_scan,
    inclusive_scan,
    segment_ids_from_flags,
    segmented_exclusive_scan,
    segmented_inclusive_scan,
    segmented_max,
    segmented_sum,
)
from repro.errors import ParameterError, PatternError

int_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(0, 200),
    elements=st.integers(-1000, 1000),
)


def reference_segscan(values, seg, op, inclusive):
    out = np.empty(len(values), dtype=np.float64)
    acc = None
    prev = None
    f = (lambda a, b: a + b) if op == "add" else max
    ident = 0 if op == "add" else -np.inf
    for i, (v, s) in enumerate(zip(values, seg)):
        if s != prev:
            acc = ident
            prev = s
        if inclusive:
            acc = f(acc, v)
            out[i] = acc
        else:
            out[i] = acc
            acc = f(acc, v)
    return out


class TestUnsegmented:
    def test_inclusive_add(self):
        assert (inclusive_scan(np.array([1, 2, 3])) == [1, 3, 6]).all()

    def test_exclusive_add(self):
        assert (exclusive_scan(np.array([1, 2, 3])) == [0, 1, 3]).all()

    def test_inclusive_max(self):
        assert (inclusive_scan(np.array([1, 5, 2]), op="max") == [1, 5, 5]).all()

    def test_exclusive_max_identity_head(self):
        out = exclusive_scan(np.array([3, 1, 4]), op="max")
        assert out[0] == np.iinfo(np.int64).min
        assert (out[1:] == [3, 3]).all()

    def test_empty(self):
        assert inclusive_scan(np.zeros(0, dtype=np.int64)).size == 0
        assert exclusive_scan(np.zeros(0, dtype=np.int64)).size == 0

    def test_unknown_op(self):
        with pytest.raises(ParameterError):
            inclusive_scan(np.array([1]), op="mul")

    def test_2d_rejected(self):
        with pytest.raises(PatternError):
            inclusive_scan(np.zeros((2, 2)))

    @given(int_arrays)
    def test_exclusive_shifts_inclusive(self, v):
        inc = inclusive_scan(v)
        exc = exclusive_scan(v)
        assert np.array_equal(exc[1:], inc[:-1])


class TestSegmentIdsFromFlags:
    def test_basic(self):
        ids = segment_ids_from_flags([1, 0, 1, 0, 0, 1])
        assert (ids == [0, 0, 1, 1, 1, 2]).all()

    def test_implicit_first_head(self):
        ids = segment_ids_from_flags([0, 0, 1, 0])
        assert (ids == [0, 0, 1, 1]).all()

    def test_empty(self):
        assert segment_ids_from_flags([]).size == 0


class TestSegmented:
    @given(
        data=st.data(),
        n=st.integers(1, 150),
        op=st.sampled_from(["add", "max"]),
        inclusive=st.booleans(),
    )
    def test_matches_reference(self, data, n, op, inclusive):
        values = data.draw(hnp.arrays(np.int64, n,
                                      elements=st.integers(-50, 50)))
        seg = np.sort(data.draw(hnp.arrays(np.int64, n,
                                           elements=st.integers(0, 5))))
        fn = segmented_inclusive_scan if inclusive else segmented_exclusive_scan
        got = fn(values, seg, op=op)
        ref = reference_segscan(values, seg, op, inclusive)
        finite = np.isfinite(ref)
        assert np.array_equal(got[finite].astype(np.float64), ref[finite])
        if not finite.all():  # exclusive-max identities at segment heads
            assert (got[~finite] == np.iinfo(np.int64).min).all()

    def test_float_values(self):
        v = np.array([0.5, 1.5, 2.5])
        seg = np.array([0, 0, 1])
        assert np.allclose(segmented_inclusive_scan(v, seg), [0.5, 2.0, 2.5])

    def test_non_monotone_segments_rejected(self):
        with pytest.raises(PatternError):
            segmented_inclusive_scan(np.arange(3), np.array([0, 1, 0]))

    def test_shape_mismatch(self):
        with pytest.raises(PatternError):
            segmented_inclusive_scan(np.arange(3), np.arange(4))

    def test_empty(self):
        out = segmented_inclusive_scan(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert out.size == 0


class TestSegmentedReductions:
    def test_segmented_sum(self):
        out = segmented_sum(np.array([1.0, 2, 3, 4]), np.array([0, 0, 2, 2]), 3)
        assert np.allclose(out, [3, 0, 7])

    def test_segmented_sum_unsorted_ids_ok(self):
        out = segmented_sum(np.array([1.0, 2, 3]), np.array([2, 0, 2]), 3)
        assert np.allclose(out, [2, 0, 4])

    def test_segmented_max(self):
        out = segmented_max(np.array([1, 9, 3]), np.array([0, 0, 1]), 3)
        assert out[0] == 9 and out[1] == 3
        assert out[2] == np.iinfo(np.int64).min  # empty segment identity

    def test_ids_out_of_range(self):
        with pytest.raises(PatternError):
            segmented_sum(np.array([1.0]), np.array([3]), 2)

    @given(int_arrays, st.integers(1, 8))
    def test_sum_partition(self, v, nseg):
        seg = np.sort(np.arange(v.size) % nseg)
        out = segmented_sum(v, seg, nseg)
        assert out.sum() == v.sum()
