"""Tests for linear compaction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import erew_compact, qrqw_compact
from repro.analysis import compare_program
from repro.errors import ParameterError, PatternError
from repro.simulator import toy_machine
from repro.workloads import TraceRecorder


class TestQrqwCompact:
    @given(hnp.arrays(np.int64, st.integers(0, 500),
                      elements=st.integers(-100, 100)),
           st.integers(0, 100))
    @settings(max_examples=25)
    def test_output_is_permutation_of_input(self, items, seed):
        out, _ = qrqw_compact(items, seed=seed)
        assert np.array_equal(np.sort(out), np.sort(items))

    def test_rounds_logarithmic(self):
        _, stats = qrqw_compact(np.arange(1 << 14), seed=0)
        assert stats.rounds <= 25

    def test_contention_small(self):
        _, stats = qrqw_compact(np.arange(1 << 13), seed=1)
        assert max(stats.per_round_contention) <= 10

    def test_traffic_independent_of_source_size(self):
        # The QRQW advantage: traffic scales with k, not n.
        rec = TraceRecorder()
        qrqw_compact(np.arange(256), seed=2, recorder=rec)
        assert rec.program.total_requests < 256 * 12

    def test_invalid(self):
        with pytest.raises(ParameterError):
            qrqw_compact(np.arange(4), slots_factor=0.5)
        with pytest.raises(PatternError):
            qrqw_compact(np.zeros((2, 2)))

    def test_empty(self):
        out, stats = qrqw_compact(np.zeros(0, dtype=np.int64), seed=3)
        assert out.size == 0 and stats.rounds == 0


class TestErewCompact:
    @given(st.data())
    @settings(max_examples=25)
    def test_stable_selection(self, data):
        n = data.draw(st.integers(0, 300))
        mask = data.draw(hnp.arrays(np.bool_, n))
        values = np.arange(n, dtype=np.int64) * 3
        out = erew_compact(mask, values)
        assert np.array_equal(out, values[mask])

    def test_shape_mismatch(self):
        with pytest.raises(PatternError):
            erew_compact(np.zeros(3, dtype=bool), np.zeros(4))

    def test_trace_scans_whole_array(self):
        n = 1024
        mask = np.zeros(n, dtype=bool)
        mask[7] = True
        rec = TraceRecorder()
        erew_compact(mask, np.arange(n), recorder=rec)
        # Must touch all n mask slots even for one marked item.
        assert rec.program.total_requests >= n

    def test_trace_contention_free(self):
        rng = np.random.default_rng(4)
        mask = rng.random(512) < 0.3
        rec = TraceRecorder()
        erew_compact(mask, np.arange(512), recorder=rec)
        for step in rec.program:
            assert step.stats().max_location_contention == 1, step.label


class TestSparseRegimeAdvantage:
    def test_qrqw_wins_when_k_small(self):
        # k = 256 marked items in an n = 64K array: the QRQW compaction's
        # simulated time beats the full-scan EREW version handily.
        machine = toy_machine(p=8, x=16, d=14)
        n, k = 1 << 16, 256
        rng = np.random.default_rng(5)
        idx = rng.choice(n, size=k, replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[idx] = True
        values = np.arange(n, dtype=np.int64)

        rec_q = TraceRecorder()
        out_q, _ = qrqw_compact(values[idx], seed=6, recorder=rec_q)
        rec_e = TraceRecorder()
        out_e = erew_compact(mask, values, recorder=rec_e)
        assert np.array_equal(np.sort(out_q), np.sort(out_e))

        tq = compare_program(machine, rec_q.program).simulated_time
        te = compare_program(machine, rec_e.program).simulated_time
        assert tq < te / 5
