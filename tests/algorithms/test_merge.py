"""Tests for the cross-ranking merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import merge_sorted
from repro.errors import PatternError
from repro.workloads import TraceRecorder

sorted_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(0, 300),
    elements=st.integers(0, 1000),
).map(np.sort)


class TestCorrectness:
    @given(sorted_arrays, sorted_arrays)
    @settings(max_examples=40)
    def test_matches_numpy(self, a, b):
        out = merge_sorted(a, b)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))

    def test_stability_a_before_b(self):
        # Equal keys: the a-element must land first.  Track via position.
        a = np.array([5])
        b = np.array([5])
        out = merge_sorted(a, b)
        assert (out == [5, 5]).all()
        # Positional check through the rank arithmetic: a goes to slot 0.
        rank_a = np.searchsorted(b, a, side="left")
        assert rank_a[0] + 0 == 0

    def test_one_empty(self):
        a = np.array([1, 3, 5])
        assert np.array_equal(merge_sorted(a, []), a)
        assert np.array_equal(merge_sorted([], a), a)

    def test_both_empty(self):
        assert merge_sorted([], []).size == 0

    def test_interleaved(self):
        out = merge_sorted([1, 3, 5], [2, 4, 6])
        assert (out == [1, 2, 3, 4, 5, 6]).all()

    def test_unsorted_rejected(self):
        with pytest.raises(PatternError):
            merge_sorted([2, 1], [3])
        with pytest.raises(PatternError):
            merge_sorted([1], [3, 2])


class TestTrace:
    def test_trace_has_both_descents_and_place(self):
        rng = np.random.default_rng(0)
        a = np.sort(rng.integers(0, 1 << 16, size=256, dtype=np.int64))
        b = np.sort(rng.integers(0, 1 << 16, size=512, dtype=np.int64))
        rec = TraceRecorder()
        merge_sorted(a, b, recorder=rec)
        labels = [s.label for s in rec.program]
        assert any("rank-a-in-b" in l for l in labels)
        assert any("rank-b-in-a" in l for l in labels)
        assert labels[-1] == "merge/place"

    def test_place_step_is_permutation(self):
        rng = np.random.default_rng(1)
        a = np.sort(rng.integers(0, 100, size=64, dtype=np.int64))
        b = np.sort(rng.integers(0, 100, size=64, dtype=np.int64))
        rec = TraceRecorder()
        merge_sorted(a, b, recorder=rec)
        place = [s for s in rec.program if s.label == "merge/place"][0]
        assert place.stats().max_location_contention == 1

    def test_descent_contention_bounded(self):
        rng = np.random.default_rng(2)
        a = np.sort(rng.integers(0, 1 << 20, size=1023, dtype=np.int64))
        b = np.sort(rng.integers(0, 1 << 20, size=2048, dtype=np.int64))
        rec = TraceRecorder()
        merge_sorted(a, b, target_contention=8, seed=3, recorder=rec)
        worst = max(
            s.stats().max_location_contention
            for s in rec.program if "rank-" in s.label
        )
        assert worst <= 64
