"""Tests for random permutation generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import erew_random_permutation, qrqw_random_permutation
from repro.errors import ParameterError
from repro.workloads import TraceRecorder


def is_permutation(perm, n):
    return perm.size == n and np.array_equal(np.sort(perm), np.arange(n))


class TestQrqwPermutation:
    @given(n=st.integers(0, 2000), seed=st.integers(0, 100))
    @settings(max_examples=25)
    def test_always_a_permutation(self, n, seed):
        perm, _ = qrqw_random_permutation(n, seed=seed)
        assert is_permutation(perm, n)

    def test_deterministic_per_seed(self):
        a, _ = qrqw_random_permutation(500, seed=9)
        b, _ = qrqw_random_permutation(500, seed=9)
        assert (a == b).all()

    def test_rounds_logarithmic(self):
        _, stats = qrqw_random_permutation(1 << 16, seed=1)
        assert stats.rounds <= 40  # ~log_{1/(1-e^{-1})}(n) + slack

    def test_rounds_shrink_geometrically(self):
        _, stats = qrqw_random_permutation(1 << 14, seed=2)
        act = stats.per_round_active
        # after the first few rounds each round loses a constant fraction
        for a, b in zip(act, act[2:]):
            assert b < a

    def test_total_darts_linear(self):
        n = 1 << 14
        _, stats = qrqw_random_permutation(n, seed=3)
        # Expected sum of geometric series ~ n / e^{-1} ~ 2.72 n.
        assert stats.total_darts < 4.5 * n

    def test_contention_small_whp(self):
        _, stats = qrqw_random_permutation(1 << 14, seed=4)
        assert max(stats.per_round_contention) <= 12

    def test_larger_slots_factor_fewer_rounds(self):
        _, s1 = qrqw_random_permutation(1 << 13, slots_factor=1.0, seed=5)
        _, s4 = qrqw_random_permutation(1 << 13, slots_factor=4.0, seed=5)
        assert s4.rounds < s1.rounds

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            qrqw_random_permutation(-1)
        with pytest.raises(ParameterError):
            qrqw_random_permutation(10, slots_factor=0.5)

    def test_trace_has_throw_and_pack(self):
        rec = TraceRecorder()
        qrqw_random_permutation(256, seed=6, recorder=rec)
        labels = [s.label for s in rec.program]
        assert any("throw" in l for l in labels)
        assert any("pack-scan" in l for l in labels)

    def test_distribution_not_degenerate(self):
        # Weak uniformity check: position of element 0 varies with seed.
        positions = {
            int(qrqw_random_permutation(64, seed=s)[0][0]) for s in range(20)
        }
        assert len(positions) > 5


class TestErewPermutation:
    @given(n=st.integers(0, 1500), seed=st.integers(0, 100))
    @settings(max_examples=20)
    def test_always_a_permutation(self, n, seed):
        perm = erew_random_permutation(n, seed=seed)
        assert is_permutation(perm, n)

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            erew_random_permutation(-1)
        with pytest.raises(ParameterError):
            erew_random_permutation(10, key_bits=0)

    def test_trace_is_radix_sort(self):
        rec = TraceRecorder()
        erew_random_permutation(256, key_bits=16, seed=7, recorder=rec)
        assert all("radix" in s.label for s in rec.program)

    def test_traffic_exceeds_qrqw(self):
        # The headline of Figure 11 in request counts: the sort-based EREW
        # algorithm moves more data than dart throwing.
        n = 1 << 13
        rec_e = TraceRecorder()
        erew_random_permutation(n, seed=8, recorder=rec_e)
        rec_q = TraceRecorder()
        qrqw_random_permutation(n, seed=8, recorder=rec_q)
        assert rec_e.program.total_requests > rec_q.program.total_requests
