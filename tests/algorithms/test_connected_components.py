"""Tests for connected components, including a union-find oracle and a
networkx cross-check."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    connected_components,
    grid_edges,
    random_graph_edges,
    star_edges,
)
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder


def union_find_labels(n, edges):
    parent = list(range(n))

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for u, v in edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    # canonical label: min vertex of the component
    out = np.array([find(i) for i in range(n)])
    # one more sweep: path compression may leave non-min roots? find()
    # fully resolves, and unions always point larger to smaller, so the
    # root IS the min vertex.
    return out


class TestCorrectness:
    @given(
        n=st.integers(1, 120),
        m=st.integers(0, 300),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=30)
    def test_matches_union_find(self, n, m, seed):
        edges = random_graph_edges(n, m, seed=seed)
        labels, _ = connected_components(n, edges)
        assert np.array_equal(labels, union_find_labels(n, edges))

    def test_matches_networkx(self):
        edges = random_graph_edges(200, 300, seed=42)
        labels, _ = connected_components(200, edges)
        g = nx.Graph()
        g.add_nodes_from(range(200))
        g.add_edges_from(map(tuple, edges))
        for comp in nx.connected_components(g):
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1
            assert comp_labels.pop() == min(comp)

    def test_no_edges(self):
        labels, stats = connected_components(5, np.zeros((0, 2), dtype=np.int64))
        assert (labels == np.arange(5)).all()
        assert stats.outer_rounds == 0

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [1, 1]])
        labels, _ = connected_components(3, edges)
        assert (labels == [0, 1, 2]).all()

    def test_star(self):
        # Center carries the max label so every hook writes to one root.
        labels, stats = connected_components(100, star_edges(100, center=99))
        assert (labels == 0).all()
        # a star collapses in one hook round
        assert stats.outer_rounds <= 2
        assert max(stats.hook_contention) >= 50

    def test_grid(self):
        labels, _ = connected_components(30, grid_edges(5, 6))
        assert (labels == 0).all()

    def test_two_components(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        labels, _ = connected_components(5, edges)
        assert (labels == [0, 0, 0, 3, 3]).all()

    def test_zero_vertices(self):
        labels, _ = connected_components(0, np.zeros((0, 2), dtype=np.int64))
        assert labels.size == 0


class TestValidation:
    def test_bad_edge_shape(self):
        with pytest.raises(PatternError):
            connected_components(4, np.zeros((3, 3), dtype=np.int64))

    def test_out_of_range_endpoint(self):
        with pytest.raises(PatternError):
            connected_components(4, np.array([[0, 4]]))

    def test_negative_n(self):
        with pytest.raises(ParameterError):
            connected_components(-1, np.zeros((0, 2), dtype=np.int64))


class TestGenerators:
    def test_star_edges_count(self):
        e = star_edges(10, center=3)
        assert e.shape == (9, 2)
        assert (e[:, 0] == 3).all()
        assert 3 not in e[:, 1]

    def test_grid_edges_count(self):
        e = grid_edges(3, 4)
        assert e.shape[0] == 3 * 3 + 2 * 4  # horiz + vert

    def test_random_graph_edges_range(self):
        e = random_graph_edges(10, 50, seed=1)
        assert e.min() >= 0 and e.max() < 10

    @pytest.mark.parametrize("fn,args", [
        (star_edges, (0,)),
        (grid_edges, (0, 3)),
        (random_graph_edges, (0, 3)),
    ])
    def test_invalid_generators(self, fn, args):
        with pytest.raises(ParameterError):
            fn(*args)


class TestTraces:
    def test_phases_recorded(self):
        rec = TraceRecorder()
        connected_components(64, star_edges(64), recorder=rec)
        labels = [s.label for s in rec.program]
        assert any("hook" in l for l in labels)
        assert any("shortcut" in l for l in labels)
        assert any("contract" in l for l in labels)
        assert any("expand" in l for l in labels)

    def test_star_hook_writes_hot_when_center_is_max_label(self):
        rec = TraceRecorder()
        connected_components(256, star_edges(256, center=255), recorder=rec)
        hot = max(
            s.stats().max_location_contention
            for s in rec.program if "hook/write-roots" in s.label
        )
        assert hot == 255  # every leaf's label is written over one root

    def test_star_hook_reads_hot_when_center_is_min_label(self):
        # With the center holding the minimum label, the writes spread over
        # distinct leaf roots but every edge still READS the center's
        # parent: the gather is the hot step.
        rec = TraceRecorder()
        connected_components(256, star_edges(256, center=0), recorder=rec)
        hot = max(
            s.stats().max_location_contention
            for s in rec.program if "hook/read-parents" in s.label
        )
        assert hot == 255

    def test_grid_hook_is_cool(self):
        rec = TraceRecorder()
        connected_components(36, grid_edges(6, 6), recorder=rec)
        first_hook = [
            s for s in rec.program if "hook/write-roots" in s.label
        ][0]
        assert first_hook.stats().max_location_contention <= 4
