"""Tests for the instrumented radix sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.algorithms import radix_sort
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder

keys_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(0, 400),
    elements=st.integers(0, 1 << 40),
)


class TestCorrectness:
    @given(keys_arrays, st.sampled_from([4, 8, 11]))
    def test_matches_numpy_sort(self, keys, radix_bits):
        s, order, _ = radix_sort(keys, radix_bits=radix_bits)
        assert np.array_equal(s, np.sort(keys))
        assert np.array_equal(keys[order], s)

    def test_stability(self):
        # Equal keys keep input order.
        keys = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        _, order, _ = radix_sort(keys)
        threes = order[:2]
        fives = order[2:]
        assert (np.diff(threes) > 0).all()
        assert (np.diff(fives) > 0).all()

    def test_empty(self):
        s, order, stats = radix_sort(np.zeros(0, dtype=np.int64))
        assert s.size == 0 and order.size == 0

    def test_already_sorted(self):
        keys = np.arange(100, dtype=np.int64)
        s, order, _ = radix_sort(keys)
        assert (order == keys).all()

    def test_duplicates_only(self):
        keys = np.full(50, 7, dtype=np.int64)
        s, order, _ = radix_sort(keys)
        assert (s == 7).all()
        assert (order == np.arange(50)).all()  # stability


class TestValidation:
    def test_negative_keys_rejected(self):
        with pytest.raises(PatternError):
            radix_sort(np.array([-1]))

    def test_float_keys_rejected(self):
        with pytest.raises(PatternError):
            radix_sort(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(PatternError):
            radix_sort(np.zeros((2, 2), dtype=np.int64))

    @pytest.mark.parametrize("rb", [0, 25])
    def test_bad_radix_bits(self, rb):
        with pytest.raises(ParameterError):
            radix_sort(np.array([1]), radix_bits=rb)

    def test_bad_p(self):
        with pytest.raises(ParameterError):
            radix_sort(np.array([1]), p=0)


class TestStatsAndTrace:
    def test_pass_count(self):
        _, _, stats = radix_sort(np.array([1, 2, 3]), bits=24, radix_bits=8)
        assert stats.n_passes == 3

    def test_pass_count_rounds_up(self):
        _, _, stats = radix_sort(np.array([1]), bits=20, radix_bits=8)
        assert stats.n_passes == 3

    def test_bits_inferred(self):
        _, _, stats = radix_sort(np.array([255], dtype=np.int64))
        assert stats.bits == 8

    def test_trace_structure(self):
        rec = TraceRecorder()
        radix_sort(np.arange(256, dtype=np.int64), bits=16, radix_bits=8,
                   recorder=rec)
        labels = [s.label for s in rec.program]
        # 4 supersteps per pass (histogram, rank-scan, permute, read-keys).
        assert len(labels) == 2 * 4
        assert any("histogram" in l for l in labels)
        assert any("permute" in l for l in labels)

    def test_permute_step_is_contention_free(self):
        rec = TraceRecorder()
        rng = np.random.default_rng(0)
        radix_sort(rng.integers(0, 1 << 16, size=512), recorder=rec)
        for step in rec.program:
            if "permute" in step.label:
                assert step.stats().max_location_contention == 1

    def test_histogram_contention_bounded_by_proc_digit_counts(self):
        rec = TraceRecorder()
        keys = np.zeros(64, dtype=np.int64)  # all same digit
        radix_sort(keys, bits=8, p=8, recorder=rec)
        hist = [s for s in rec.program if "histogram" in s.label][0]
        # 64 keys, 8 procs, all digit 0: contention = per-proc count = 8.
        assert hist.stats().max_location_contention == 8

    def test_untraced_has_no_overhead_paths(self):
        # Without a recorder the function must not build rank arrays etc.
        s, order, _ = radix_sort(np.arange(1000, dtype=np.int64)[::-1].copy())
        assert (s == np.arange(1000)).all()
