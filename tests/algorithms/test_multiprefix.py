"""Tests for the multiprefix extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import multiprefix, multiprefix_direct
from repro.errors import ParameterError, PatternError
from repro.workloads import TraceRecorder


def oracle(keys, values, n_keys):
    run = np.zeros(n_keys, dtype=np.int64)
    prefix = np.zeros(len(keys), dtype=np.int64)
    for i, (k, v) in enumerate(zip(keys, values)):
        prefix[i] = run[k]
        run[k] += v
    return prefix, run


class TestMultiprefix:
    @given(
        n=st.integers(0, 300),
        n_keys=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=25)
    def test_matches_oracle(self, n, n_keys, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, n_keys, size=n, dtype=np.int64)
        values = rng.integers(0, 20, size=n, dtype=np.int64)
        for fn in (multiprefix, multiprefix_direct):
            prefix, totals = fn(keys, values, n_keys)
            exp_prefix, exp_totals = oracle(keys, values, n_keys)
            assert np.array_equal(prefix, exp_prefix), fn.__name__
            assert np.array_equal(totals, exp_totals), fn.__name__

    def test_float_values(self):
        prefix, totals = multiprefix(
            np.array([0, 0, 1]), np.array([0.5, 1.5, 2.0]), 2
        )
        assert np.allclose(prefix, [0.0, 0.5, 0.0])
        assert np.allclose(totals, [2.0, 2.0])

    def test_validation(self):
        with pytest.raises(PatternError):
            multiprefix(np.array([0, 1]), np.array([1]), 2)
        with pytest.raises(PatternError):
            multiprefix(np.array([2]), np.array([1]), 2)
        with pytest.raises(ParameterError):
            multiprefix(np.array([0]), np.array([1]), 0)

    def test_direct_trace_contention_is_key_multiplicity(self):
        keys = np.array([3] * 17 + [1, 2], dtype=np.int64)
        rec = TraceRecorder()
        multiprefix_direct(keys, np.ones(19, dtype=np.int64), 5, recorder=rec)
        step = rec.program[0]
        assert step.stats().max_location_contention == 17

    def test_sorted_trace_has_radix_steps(self):
        rec = TraceRecorder()
        rng = np.random.default_rng(0)
        multiprefix(rng.integers(0, 8, size=64), np.ones(64, dtype=np.int64),
                    8, recorder=rec)
        assert any("radix" in s.label for s in rec.program)
        assert any("unpermute" in s.label for s in rec.program)
