"""CLI front-end tests: the NDJSON filter (in-process and as a real
subprocess) and the HTTP endpoint (the selector frontend, in-process
on an ephemeral port).
"""

import io
import json
import os
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.serving import PredictionService, ServingFrontend
from repro.serving.__main__ import _run_ndjson, main

ROOT = Path(__file__).resolve().parents[2]

N = 1024

LINES = [
    json.dumps({"op": "predict", "machine": "toy",
                "pattern": {"kind": "hotspot", "n": N, "k": 16},
                "request_id": "first"}),
    "",                                     # blank lines are skipped
    "this is not json",                     # must answer 400, not crash
    json.dumps({"op": "simulate", "machine": "toy", "engine": "event",
                "pattern": {"kind": "uniform", "n": N},
                "request_id": "last"}),
]


def test_ndjson_in_process():
    out = io.StringIO()
    with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
        status = _run_ndjson(svc, io.StringIO("\n".join(LINES)), out)
    assert status == 0
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(responses) == 3              # blank line produced nothing
    assert responses[0]["status"] == "ok"
    assert responses[0]["request_id"] == "first"
    assert responses[1]["status"] == "bad-request"
    assert responses[2]["status"] == "ok"
    assert responses[2]["request_id"] == "last"
    assert responses[2]["result"]["simulated_time"] > 0


def test_ndjson_subprocess(tmp_path, isolated_cache):
    manifest_path = tmp_path / "serve-manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serving", "--no-disk-cache",
         "--flush-ms", "1", "--manifest", str(manifest_path), "--metrics"],
        input="\n".join(LINES) + "\n",
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    assert [r["status"] for r in responses] == ["ok", "bad-request", "ok"]
    assert "serving metrics" in proc.stderr
    manifest = json.loads(manifest_path.read_text())
    assert manifest["received"] == 3
    assert manifest["served"] == 2 and manifest["invalid"] == 1


def test_ndjson_subprocess_sharded(tmp_path, isolated_cache):
    """--workers 2 serves the same stdio contract through the router
    and writes the router-variant manifest on exit."""
    manifest_path = tmp_path / "router-manifest.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serving", "--workers", "2",
         "--no-disk-cache", "--flush-ms", "1",
         "--manifest", str(manifest_path), "--metrics"],
        input="\n".join(LINES) + "\n",
        capture_output=True, text=True, timeout=240, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    assert [r["status"] for r in responses] == ["ok", "bad-request", "ok"]
    assert "router metrics" in proc.stderr
    manifest = json.loads(manifest_path.read_text())
    assert manifest["service"] == "repro.serving.ShardRouter"
    assert manifest["workers"] == 2
    assert manifest["received"] == 3
    assert len(manifest["shards"]) == 2
    # every request was answered by exactly one shard
    assert sum(s["received"] for s in manifest["shards"]) \
        + manifest["hot_hits"] == 3


@pytest.fixture()
def http_server():
    svc = PredictionService(disk_cache=False, flush_ms=1.0)
    frontend = ServingFrontend(svc)
    thread = threading.Thread(target=frontend.serve_forever, daemon=True)
    thread.start()
    host, port = frontend.address
    try:
        yield f"http://{host}:{port}"
    finally:
        frontend.shutdown()   # drains svc via backend.close()
        thread.join(timeout=60)
        assert not thread.is_alive()


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        # Error responses still carry the JSON payload.
        return exc.code, json.loads(exc.read())


def test_http_endpoints(http_server):
    status, body = _post(http_server, {
        "op": "predict", "machine": "toy",
        "pattern": {"kind": "hotspot", "n": N, "k": 8},
    })
    assert status == 200 and body["status"] == "ok"
    assert body["result"]["dxbsp_time"] > 0

    status, body = _post(http_server, [
        {"op": "predict", "machine": "toy",
         "pattern": {"kind": "uniform", "n": N}},
        {"op": "nope"},
    ])
    # a list answers with the worst member's code
    assert status == 400
    assert [r["status"] for r in body] == ["ok", "bad-request"]

    with urllib.request.urlopen(http_server + "/healthz", timeout=30) as resp:
        assert json.loads(resp.read()) == {"status": "ok"}
    with urllib.request.urlopen(http_server + "/metrics", timeout=30) as resp:
        metrics = json.loads(resp.read())
    assert metrics["received"] == 3


def test_http_error_paths(http_server):
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(http_server + "/nowhere", timeout=30)
    assert exc_info.value.code == 404

    req = urllib.request.Request(
        http_server, data=b"{not json", method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        urllib.request.urlopen(req, timeout=30)
    assert exc_info.value.code == 400


def test_main_rejects_unknown_flag(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["--warp-speed"])
    assert exc_info.value.code == 2
