"""Stream-session serving tests: open/chunk/close through the
in-process service, the sharded router and the network frontend.

The load-bearing properties: (1) a streamed trace is answered
bit-identically to one-shot simulation of the concatenated addresses —
every chunk response is the exact prefix result; (2) backpressure is
deterministic — a session past its in-flight window sheds with 429
instead of buffering; (3) a worker death mid-stream drops only that
session — rerouted chunks are answered 400 with a reopen hint and the
router keeps serving.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.serving import (
    PredictionService,
    ServingFrontend,
    ShardRouter,
    route_digest,
    serving_manifest,
)
from repro.simulator import (
    CRAY_J90,
    StreamSimulator,
    simulate_scatter_engine,
    toy_machine,
)

TOY = toy_machine()


def _kwargs(**extra):
    return dict(flush_ms=1.0, deadline_ms=None, disk_cache=False, **extra)


def _open(sid, machine="toy"):
    return {"op": "stream", "action": "open", "stream_id": sid,
            "machine": machine}


def _chunk(sid, addresses):
    return {"op": "stream", "action": "chunk", "stream_id": sid,
            "addresses": list(map(int, addresses))}


def _close(sid):
    return {"op": "stream", "action": "close", "stream_id": sid}


def _trace(n=6000, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 16, size=n, dtype=np.int64)


class TestStreamSessions:
    def test_chunks_answer_exact_prefix_results(self):
        trace = _trace()
        bounds = [0, 1000, 1500, 4096, 6000]
        with PredictionService(**_kwargs()) as svc:
            assert svc.call(_open("s", "toy"), timeout=60).ok
            for lo, hi in zip(bounds, bounds[1:]):
                resp = svc.call(_chunk("s", trace[lo:hi]), timeout=60)
                assert resp.ok and resp.engine == "stream"
                one = simulate_scatter_engine(
                    TOY, trace[:hi], engine="event"
                )
                assert resp.result["n"] == hi
                assert resp.result["simulated_time"] == float(one.time)
                assert resp.result["mean_wait"] == float(one.mean_wait)
                assert resp.result["max_wait"] == float(one.max_wait)
                assert resp.result["max_bank_load"] == \
                    int(one.max_bank_load)
            fin = svc.call(_close("s"), timeout=60)
        one = simulate_scatter_engine(TOY, trace, engine="event")
        assert fin.ok and fin.result["n"] == trace.size
        assert fin.result["simulated_time"] == float(one.time)
        assert fin.result["stalled_cycles"] == float(one.stalled_cycles)
        assert fin.machine == TOY.name
        # The digest is the chunking-invariant prefix identity.
        sim = StreamSimulator(TOY)
        sim.feed(trace)
        assert fin.result["prefix_digest"] == sim.prefix_digest

    def test_stream_answers_are_never_cached(self):
        # The same chunk payload fed twice must advance the stream, not
        # replay the first answer from the LRU or memo.
        addrs = list(range(512))
        with PredictionService(**_kwargs()) as svc:
            assert svc.call(_open("twice"), timeout=60).ok
            first = svc.call(_chunk("twice", addrs), timeout=60)
            second = svc.call(_chunk("twice", addrs), timeout=60)
        assert first.result["n"] == 512 and second.result["n"] == 1024
        assert not first.cached and not second.cached

    def test_session_errors_answer_400(self):
        with PredictionService(**_kwargs(max_streams=1)) as svc:
            assert svc.call(_open("a"), timeout=60).ok
            dup = svc.call(_open("a"), timeout=60)
            assert dup.code == 400 and "already open" in dup.error
            full = svc.call(_open("b"), timeout=60)
            assert full.code == 429
            unknown = svc.call(_chunk("nope", [1, 2]), timeout=60)
            assert unknown.code == 400 and "reopen" in unknown.error
            assert svc.call(_close("a"), timeout=60).ok
            late = svc.call(_chunk("a", [1, 2]), timeout=60)
            assert late.code == 400
            # capacity released: a fresh open (same id) succeeds
            assert svc.call(_open("a"), timeout=60).ok

    def test_request_validation(self):
        with PredictionService(**_kwargs()) as svc:
            bad = [
                {"op": "stream", "action": "pour", "stream_id": "x"},
                {"op": "stream", "action": "open"},  # no stream_id
                {"op": "stream", "action": "open", "stream_id": "x",
                 "addresses": [1]},
                {"op": "stream", "action": "chunk", "stream_id": "x"},
                {"op": "stream", "action": "chunk", "stream_id": "x",
                 "addresses": [1], "deadline_ms": 50},
                {"op": "stream", "action": "chunk", "stream_id": "x",
                 "pattern": {"kind": "uniform", "n": 8},
                 "sweep": {"param": "n", "values": [8, 16]}},
                {"op": "predict", "stream_id": "x",
                 "pattern": {"kind": "uniform", "n": 8}},
            ]
            for req in bad:
                resp = svc.call(req, timeout=60)
                assert resp.code == 400, req

    def test_window_overrun_sheds_deterministically(self, monkeypatch):
        """Backpressure under a slow consumer: with the dispatcher
        parked inside a feed, the window fills and the next chunk is
        shed with 429 — deterministically, no timing involved."""
        entered = threading.Event()
        release = threading.Event()
        orig = StreamSimulator.feed

        def gated(self, addresses):
            entered.set()
            assert release.wait(60)
            return orig(self, addresses)

        monkeypatch.setattr(StreamSimulator, "feed", gated)
        with PredictionService(**_kwargs(stream_window=2)) as svc:
            assert svc.call(_open("w"), timeout=60).ok
            t1 = svc.submit(_chunk("w", [1, 2, 3]))
            assert entered.wait(60)           # dispatcher inside feed
            t2 = svc.submit(_chunk("w", [4, 5, 6]))
            shed = svc.call(_chunk("w", [7, 8, 9]), timeout=60)
            assert shed.status == "overloaded" and shed.code == 429
            assert "window full" in shed.error
            release.set()
            assert t1.result(60).ok and t2.result(60).ok
            # window drained: chunks are admitted again
            assert svc.call(_chunk("w", [10]), timeout=60).ok
            assert svc.stats().shed == 1

    def test_failed_step_kills_only_its_session(self, monkeypatch):
        boom = RuntimeError("carry state lost")

        def exploding(self, addresses):
            raise boom

        with PredictionService(**_kwargs()) as svc:
            assert svc.call(_open("dead"), timeout=60).ok
            assert svc.call(_open("alive"), timeout=60).ok
            monkeypatch.setattr(StreamSimulator, "feed", exploding)
            failed = svc.call(_chunk("dead", [1]), timeout=60)
            assert failed.code == 500 and "carry state lost" in failed.error
            monkeypatch.undo()
            gone = svc.call(_chunk("dead", [1]), timeout=60)
            assert gone.code == 400
            # the other session and the batched path still work
            assert svc.call(_chunk("alive", [1, 2]), timeout=60).ok
            assert svc.call({"op": "predict", "machine": "toy",
                             "addresses": [1, 2, 3]}, timeout=60).ok

    def test_close_checkpoints_into_runner_memo(self):
        trace = _trace(3000)
        with PredictionService(flush_ms=1.0, deadline_ms=None) as svc:
            assert svc.call(_open("ck"), timeout=60).ok
            svc.call(_chunk("ck", trace), timeout=60)
            fin = svc.call(_close("ck"), timeout=60)
        assert fin.ok and fin.result["checkpoint"] is True
        resumed = StreamSimulator(TOY)
        assert resumed.resume_from_checkpoint(
            fin.result["prefix_digest"], fin.result["n"]
        )
        assert resumed.n == trace.size
        assert resumed.result().time == fin.result["simulated_time"]

    def test_manifest_counts_sessions(self):
        with PredictionService(**_kwargs()) as svc:
            svc.call(_open("m1"), timeout=60)
            svc.call(_chunk("m1", [1, 2]), timeout=60)
            svc.call(_chunk("m1", [3, 4]), timeout=60)
            svc.call(_close("m1"), timeout=60)
            svc.call(_open("m2"), timeout=60)  # left open
            data = serving_manifest(svc)
            svc.close()
        assert data["streams_opened"] == 2
        assert data["stream_chunks"] == 2
        assert data["streams_closed"] == 1
        assert data["max_streams"] == 8
        assert data["stream_window"] == 8


class TestStreamRouting:
    def test_session_affinity_digest(self):
        # Every step of one session routes identically, whatever
        # payload or action it carries.
        digests = {
            route_digest(req) for req in (
                _open("affine", "j90"),
                _chunk("affine", [1, 2, 3]),
                _chunk("affine", list(range(100))),
                {"op": "stream", "action": "chunk", "stream_id": "affine",
                 "pattern": {"kind": "uniform", "n": 64}},
                _close("affine"),
            )
        }
        assert len(digests) == 1
        assert route_digest(_open("other")) not in digests

    def test_streamed_trace_matches_one_shot_through_router(self):
        trace = _trace(8000, seed=3)
        with ShardRouter(2, **_kwargs()) as router:
            assert router.call(_open("rt", "j90"), timeout=120).ok
            for lo in range(0, trace.size, 2000):
                resp = router.call(
                    _chunk("rt", trace[lo:lo + 2000]), timeout=120
                )
                assert resp.ok and resp.result["n"] == lo + 2000
            fin = router.call(_close("rt"), timeout=120)
            assert router.stats().hot_hits == 0
        one = simulate_scatter_engine(CRAY_J90, trace, engine="event")
        assert fin.result["simulated_time"] == float(one.time)
        assert fin.result["mean_wait"] == float(one.mean_wait)

    def test_worker_death_mid_stream_answers_reopen(self):
        with ShardRouter(2, hot_tier_slots=0, **_kwargs()) as router:
            opened = router.call(_open("doomed"), timeout=120)
            assert opened.ok
            assert router.call(_chunk("doomed", [1, 2, 3]),
                               timeout=120).ok
            home = int.from_bytes(
                route_digest(_open("doomed"))[:8], "big"
            ) % 2
            victim = router._procs[home]
            victim.terminate()
            victim.join(timeout=30)
            deadline = time.monotonic() + 30
            while router.live_workers() > 1:
                assert time.monotonic() < deadline, "EOF never noticed"
                time.sleep(0.02)
            # The rerouted chunk reaches the survivor, which has no such
            # session: a 400 telling the client to reopen — not a hang,
            # not a wrong answer.
            lost = router.call(_chunk("doomed", [4, 5, 6]), timeout=120)
            assert lost.code == 400 and "reopen" in lost.error
            # The router still serves: reopen + refeed on the survivor,
            # and ordinary requests keep working.
            assert router.call(_open("doomed"), timeout=120).ok
            assert router.call(_chunk("doomed", [1, 2, 3]),
                               timeout=120).ok
            assert router.call({"op": "predict", "machine": "toy",
                                "addresses": [1, 2, 3]}, timeout=120).ok


class TestStreamFrontend:
    def test_ndjson_stream_session_over_socket(self):
        trace = _trace(4000, seed=9)
        service = PredictionService(**_kwargs())
        fe = ServingFrontend(service)
        thread = threading.Thread(target=fe.serve_forever, daemon=True)
        thread.start()
        try:
            lines = [_open("wire", "toy")]
            lines += [_chunk("wire", trace[lo:lo + 1000])
                      for lo in range(0, 4000, 1000)]
            lines.append(_close("wire"))
            payload = b"".join(
                json.dumps(line).encode() + b"\n" for line in lines
            )
            with socket.create_connection(fe.address) as sock:
                sock.sendall(payload)
                sock.shutdown(socket.SHUT_WR)
                sock.settimeout(60)
                data = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    data += chunk
            responses = [json.loads(l) for l in data.splitlines()]
            assert [r["status"] for r in responses] == ["ok"] * 6
            # in submit order: open, rolling prefixes, final
            assert responses[0]["result"]["n"] == 0
            assert [r["result"]["n"] for r in responses[1:5]] == \
                [1000, 2000, 3000, 4000]
            one = simulate_scatter_engine(TOY, trace, engine="event")
            assert responses[5]["result"]["simulated_time"] == \
                float(one.time)
        finally:
            fe.shutdown()
            thread.join(timeout=60)
            assert not thread.is_alive()
