"""Selector-frontend tests: both wire protocols on one port, in-order
NDJSON streaming, half-close handling, and the ordered shutdown — in
particular the close-during-flush race: requests already parked in the
micro-batcher when ``shutdown()`` is called must still be answered and
written before the socket closes.
"""

import json
import socket
import threading
import time

import pytest

from repro.serving import PredictionService, ServingFrontend, ShardRouter

N = 1024


def _request(i, **extra):
    return {"op": "predict", "machine": "toy", "request_id": f"r{i}",
            "pattern": {"kind": "hotspot", "n": N, "k": 2 ** (i % 8 + 1)},
            **extra}


def _recv_all(sock, timeout=60.0):
    sock.settimeout(timeout)
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk


def _http_roundtrip(address, raw):
    with socket.create_connection(address) as sock:
        sock.sendall(raw)
        return _recv_all(sock)


@pytest.fixture()
def frontend():
    """A running frontend over an in-process service; the test body
    gets (frontend, service, thread) and shutdown is checked on exit."""
    service = PredictionService(flush_ms=1.0, deadline_ms=None,
                                disk_cache=False)
    fe = ServingFrontend(service)
    thread = threading.Thread(target=fe.serve_forever, daemon=True)
    thread.start()
    yield fe, service, thread
    fe.shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive()


class TestProtocols:
    def test_http_and_ndjson_share_the_port(self, frontend):
        fe, _service, _thread = frontend
        body = json.dumps(_request(3)).encode()
        raw = (b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
               % (len(body), body))
        resp = _http_roundtrip(fe.address, raw)
        head, _, payload = resp.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200")
        assert json.loads(payload)["status"] == "ok"

        with socket.create_connection(fe.address) as sock:
            sock.sendall(json.dumps(_request(4)).encode() + b"\n")
            sock.shutdown(socket.SHUT_WR)
            lines = _recv_all(sock).splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["request_id"] == "r4"

    def test_ndjson_streams_in_submit_order(self, frontend):
        fe, _service, _thread = frontend
        with socket.create_connection(fe.address) as sock:
            payload = b"".join(
                json.dumps(_request(i)).encode() + b"\n" for i in range(6)
            )
            # an unparsable line still gets its (400) response, in order
            payload += b"this is not json\n"
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            lines = _recv_all(sock).splitlines()
        responses = [json.loads(line) for line in lines]
        assert [r["request_id"] for r in responses[:6]] == \
            [f"r{i}" for i in range(6)]
        assert all(r["status"] == "ok" for r in responses[:6])
        assert responses[6]["status"] == "bad-request"

    def test_ndjson_connection_can_stay_open(self, frontend):
        fe, _service, _thread = frontend
        with socket.create_connection(fe.address) as sock:
            sock.settimeout(60)
            with sock.makefile("rb") as reader:
                for i in range(3):
                    sock.sendall(json.dumps(_request(i)).encode() + b"\n")
                    resp = json.loads(reader.readline())
                    assert resp["request_id"] == f"r{i}"
                    assert resp["status"] == "ok"

    def test_http_list_answers_worst_code(self, frontend):
        fe, _service, _thread = frontend
        body = json.dumps([_request(0), {"op": "nope"}]).encode()
        raw = (b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
               % (len(body), body))
        resp = _http_roundtrip(fe.address, raw)
        head, _, payload = resp.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400")
        assert [r["status"] for r in json.loads(payload)] == \
            ["ok", "bad-request"]

    def test_http_get_endpoints(self, frontend):
        fe, _service, _thread = frontend
        resp = _http_roundtrip(fe.address, b"GET /healthz HTTP/1.1\r\n\r\n")
        assert json.loads(resp.partition(b"\r\n\r\n")[2]) == {"status": "ok"}
        resp = _http_roundtrip(fe.address, b"GET /metrics HTTP/1.1\r\n\r\n")
        metrics = json.loads(resp.partition(b"\r\n\r\n")[2])
        assert metrics["service"] == "repro.serving.PredictionService"
        resp = _http_roundtrip(fe.address, b"GET /nowhere HTTP/1.1\r\n\r\n")
        assert resp.startswith(b"HTTP/1.1 404")
        resp = _http_roundtrip(fe.address, b"PUT / HTTP/1.1\r\n\r\n")
        assert resp.startswith(b"HTTP/1.1 405")

    def test_http_bad_body_answers_400(self, frontend):
        fe, _service, _thread = frontend
        raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json"
        resp = _http_roundtrip(fe.address, raw)
        assert resp.startswith(b"HTTP/1.1 400")

    def test_huge_numeric_request_cannot_kill_the_loop(self, frontend):
        """Regression: ``map_seed=10**400`` used to raise OverflowError
        inside the key hasher, unwind serve_forever, and drop every
        connection.  It must cost exactly one response line, and the
        server must keep answering afterwards."""
        fe, _service, _thread = frontend
        hostile = dict(_request(0), map_seed=10 ** 400)
        with socket.create_connection(fe.address) as sock:
            sock.settimeout(60)
            with sock.makefile("rb") as reader:
                sock.sendall(json.dumps(hostile).encode() + b"\n")
                first = json.loads(reader.readline())
                sock.sendall(json.dumps(_request(1)).encode() + b"\n")
                second = json.loads(reader.readline())
        # The hostile request gets *an* answer (any status) ...
        assert "status" in first
        # ... and the loop survived to serve the next request.
        assert second["request_id"] == "r1"
        assert second["status"] == "ok"

    def test_submit_exception_contained_to_request(self):
        """A backend that raises out of submit() (instead of answering,
        its normal contract) yields a 500-status response for that
        request; the loop and later connections keep working."""

        class _BoobyTrap:
            def submit(self, data):
                raise RuntimeError("kaboom")

            def close(self):
                pass

        fe = ServingFrontend(_BoobyTrap(), metrics=lambda: {})
        thread = threading.Thread(target=fe.serve_forever, daemon=True)
        thread.start()
        try:
            for i in range(2):  # second connection proves the loop lives
                with socket.create_connection(fe.address) as sock:
                    sock.sendall(json.dumps(_request(i)).encode() + b"\n")
                    sock.shutdown(socket.SHUT_WR)
                    lines = _recv_all(sock).splitlines()
                resp = json.loads(lines[0])
                assert resp["status"] == "error"
                assert resp["code"] == 500
                assert "kaboom" in resp["error"]
                assert resp["request_id"] == f"r{i}"
            raw = (b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            assert _http_roundtrip(fe.address, raw).startswith(
                b"HTTP/1.1 500"
            )
        finally:
            fe.shutdown()
            thread.join(timeout=60)
        assert not thread.is_alive()

    def test_router_backend_serves_router_metrics(self):
        router = ShardRouter(2, flush_ms=1.0, deadline_ms=None,
                             disk_cache=False)
        fe = ServingFrontend(router)
        thread = threading.Thread(target=fe.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(fe.address) as sock:
                sock.sendall(json.dumps(_request(1)).encode() + b"\n")
                sock.shutdown(socket.SHUT_WR)
                lines = _recv_all(sock).splitlines()
            assert json.loads(lines[0])["status"] == "ok"
            resp = _http_roundtrip(fe.address,
                                   b"GET /metrics HTTP/1.1\r\n\r\n")
            metrics = json.loads(resp.partition(b"\r\n\r\n")[2])
            assert metrics["service"] == "repro.serving.ShardRouter"
            assert metrics["workers"] == 2
        finally:
            fe.shutdown()
            thread.join(timeout=60)
        assert not thread.is_alive()


class TestShutdown:
    def test_close_during_flush_answers_everything(self):
        """THE race the rewrite exists for: requests parked in the
        micro-batcher (flush watermark not reached) when shutdown is
        requested are still evaluated, written, and only then does the
        connection close."""
        service = PredictionService(flush_ms=60_000.0, batch_size=100,
                                    deadline_ms=None, disk_cache=False)
        fe = ServingFrontend(service)
        thread = threading.Thread(target=fe.serve_forever, daemon=True)
        thread.start()
        try:
            with socket.create_connection(fe.address) as sock:
                sock.sendall(b"".join(
                    json.dumps(_request(i)).encode() + b"\n"
                    for i in range(4)
                ))
                # wait until all four are parked in an open batch
                deadline = time.monotonic() + 30
                while service._batcher.pending < 4:
                    assert time.monotonic() < deadline, \
                        "requests never reached the batcher"
                    time.sleep(0.005)
                fe.shutdown()
                lines = _recv_all(sock).splitlines()
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        responses = [json.loads(line) for line in lines]
        assert [r["request_id"] for r in responses] == \
            [f"r{i}" for i in range(4)]
        assert all(r["status"] == "ok" for r in responses)
        assert service.stats().served == 4

    def test_shutdown_stops_accepting(self, frontend):
        fe, _service, thread = frontend
        fe.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(fe.address, timeout=5)

    def test_shutdown_is_idempotent(self, frontend):
        fe, _service, _thread = frontend
        fe.shutdown()
        fe.shutdown()
