"""MicroBatcher unit tests (synthetic clock) and service-level
batching behaviour: grouping, duplicate collapse, occupancy accounting.
"""

import pytest

from repro.serving import MicroBatcher, PredictionService

N = 1024


class TestMicroBatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(flush_interval=-1.0)

    def test_empty_batcher_is_idle(self):
        b = MicroBatcher(batch_size=4, flush_interval=1.0)
        assert b.pending == 0
        assert b.seconds_until_due(now=0.0) is None
        assert b.take_due(now=100.0) == []
        assert b.take_all() == []

    def test_size_watermark(self):
        b = MicroBatcher(batch_size=3, flush_interval=1000.0)
        for i in range(2):
            b.add("g", f"item{i}", now=0.0)
        assert b.take_due(now=0.0) == []           # below both watermarks
        b.add("g", "item2", now=0.0)
        assert b.seconds_until_due(now=0.0) == 0.0  # size watermark hit
        (flushed,) = b.take_due(now=0.0)
        assert flushed == ["item0", "item1", "item2"]
        assert b.pending == 0

    def test_latency_watermark(self):
        b = MicroBatcher(batch_size=100, flush_interval=0.5)
        b.add("g", "lonely", now=10.0)
        assert b.take_due(now=10.4) == []
        assert b.seconds_until_due(now=10.4) == pytest.approx(0.1)
        (flushed,) = b.take_due(now=10.5)
        assert flushed == ["lonely"]

    def test_bucket_age_is_oldest_item(self):
        b = MicroBatcher(batch_size=100, flush_interval=1.0)
        b.add("g", "first", now=0.0)
        b.add("g", "second", now=0.9)   # does not reset the bucket age
        (flushed,) = b.take_due(now=1.0)
        assert flushed == ["first", "second"]

    def test_groups_flush_independently(self):
        b = MicroBatcher(batch_size=2, flush_interval=1000.0)
        b.add("a", 1, now=0.0)
        b.add("b", 2, now=0.0)
        b.add("a", 3, now=0.0)
        (flushed,) = b.take_due(now=0.0)
        assert flushed == [1, 3]
        assert b.pending == 1            # group "b" still open
        assert b.take_all() == [[2]]

    def test_take_all_ignores_watermarks(self):
        b = MicroBatcher(batch_size=100, flush_interval=1000.0)
        b.add("a", 1, now=0.0)
        b.add("b", 2, now=0.0)
        assert sorted(map(tuple, b.take_all())) == [(1,), (2,)]
        assert b.pending == 0


class TestServiceBatching:
    def test_duplicates_collapse_to_one_evaluation(self):
        n_dup = 6
        req = {"op": "predict", "machine": "toy",
               "pattern": {"kind": "hotspot", "n": N, "k": 32}}
        with PredictionService(batch_size=n_dup, flush_ms=60_000.0,
                               disk_cache=False) as svc:
            responses = svc.serve([dict(req) for _ in range(n_dup)])
        assert all(r.ok for r in responses)
        assert len({r.result["dxbsp_time"] for r in responses}) == 1
        stats = svc.stats()
        assert stats.evaluations == 1          # one engine pass ...
        assert stats.batched_requests == n_dup  # ... answered them all
        assert stats.batches == 1
        assert stats.max_batch == n_dup
        assert stats.mean_occupancy == n_dup
        assert all(r.batch == n_dup for r in responses)

    def test_incompatible_requests_do_not_share_a_flush(self):
        reqs = [
            {"op": "predict", "machine": "toy",
             "pattern": {"kind": "hotspot", "n": N, "k": 8}},
            {"op": "predict", "machine": "j90",     # different machine
             "pattern": {"kind": "hotspot", "n": N, "k": 8}},
            {"op": "simulate", "machine": "toy", "engine": "event",
             "pattern": {"kind": "hotspot", "n": N, "k": 8}},
        ]
        with PredictionService(batch_size=100, flush_ms=30.0,
                               disk_cache=False) as svc:
            responses = svc.serve(reqs)
        assert all(r.ok for r in responses)
        assert all(r.batch == 1 for r in responses)
        assert svc.stats().batches == 3

    def test_sweep_values_ride_one_flush(self):
        values = [2, 8, 32, 128]
        with PredictionService(batch_size=len(values), flush_ms=60_000.0,
                               disk_cache=False) as svc:
            resp = svc.call({
                "op": "predict", "machine": "toy",
                "pattern": {"kind": "hotspot", "n": N},
                "sweep": {"param": "k", "values": values},
            })
        assert resp.ok
        stats = svc.stats()
        assert stats.batches == 1
        assert stats.evaluations == len(values)
        assert resp.batch == len(values)

    def test_lru_hit_skips_the_queue_entirely(self):
        req = {"op": "predict", "machine": "toy",
               "pattern": {"kind": "uniform", "n": N}}
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            first = svc.call(req)
            second = svc.call(req)
            stats = svc.stats()
        assert not first.cached and second.cached
        assert second.batch == 0
        assert stats.lru_hits == 1
        assert stats.evaluations == 1
