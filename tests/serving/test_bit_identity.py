"""Service responses must be bit-identical to direct library calls.

The acceptance bar for the serving layer: queueing, micro-batching and
caching may decide *when* an evaluation runs, never *what* it computes.
Every test here asks the service a question, makes the same library
call by hand, and compares with ``==`` — no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.contention import max_location_contention
from repro.core.cost import predict_scatter_bsp, predict_scatter_dxbsp
from repro.serving import (
    PredictionService,
    evaluate_point,
    resolve_bank_map,
    resolve_machine,
    resolve_pattern,
)
from repro.simulator import ENGINES, simulate_scatter_engine
from repro.workloads import hotspot

N = 2048


def _service(**kw):
    kw.setdefault("disk_cache", False)
    kw.setdefault("flush_ms", 1.0)
    return PredictionService(**kw)


@pytest.mark.parametrize("engine", ENGINES)
def test_simulate_matches_direct_engine_call(engine):
    machine = resolve_machine("toy")
    addr = hotspot(n=N, k=64, space=1 << 24, seed=1995)
    direct = simulate_scatter_engine(machine, addr, None, engine=engine)
    with _service() as svc:
        resp = svc.call({
            "op": "simulate", "machine": "toy", "engine": engine,
            "pattern": {"kind": "hotspot", "n": N, "k": 64},
        })
    assert resp.ok
    assert resp.result["simulated_time"] == float(direct.time)
    assert resp.result["max_bank_load"] == int(direct.max_bank_load)
    assert resp.result["max_wait"] == float(direct.max_wait)
    assert resp.result["mean_wait"] == float(direct.mean_wait)
    assert resp.result["stalled_cycles"] == float(direct.stalled_cycles)
    assert resp.result["n"] == N


@pytest.mark.parametrize("bank_map", ["interleave", "random", "h1", "h2", "h3"])
def test_predict_matches_direct_cost_call(bank_map):
    machine = resolve_machine("j90")
    addr = hotspot(n=N, k=256, space=1 << 24, seed=1995)
    mapping = resolve_bank_map(bank_map, 1995)
    params = machine.params()
    with _service() as svc:
        resp = svc.call({
            "op": "predict", "machine": "j90", "bank_map": bank_map,
            "map_seed": 1995,
            "pattern": {"kind": "hotspot", "n": N, "k": 256},
        })
    assert resp.ok
    assert resp.result["bsp_time"] == float(predict_scatter_bsp(params, addr))
    assert resp.result["dxbsp_time"] == float(
        predict_scatter_dxbsp(params, addr, mapping)
    )
    assert resp.result["contention"] == int(max_location_contention(addr))


@pytest.mark.parametrize("engine", ENGINES)
@given(k=st.sampled_from([1, 4, 32, 256, N]))
def test_compare_matches_direct_calls_property(engine, k):
    machine = resolve_machine("toy")
    addr = hotspot(n=N, k=k, space=1 << 24, seed=1995)
    direct_sim = simulate_scatter_engine(machine, addr, None, engine=engine)
    params = machine.params()
    with _service() as svc:
        resp = svc.call({
            "op": "compare", "machine": "toy", "engine": engine,
            "pattern": {"kind": "hotspot", "n": N, "k": k},
        })
    assert resp.ok
    assert resp.result["simulated_time"] == float(direct_sim.time)
    assert resp.result["bsp_time"] == float(predict_scatter_bsp(params, addr))
    assert resp.result["dxbsp_time"] == float(
        predict_scatter_dxbsp(params, addr, None)
    )


def test_explicit_addresses_match_direct_call():
    machine = resolve_machine("toy")
    rng = np.random.default_rng(7)
    addresses = rng.integers(0, 1 << 16, size=512).tolist()
    addr = resolve_pattern(None, addresses)
    direct = simulate_scatter_engine(machine, addr, None, engine="banksim")
    with _service() as svc:
        resp = svc.call({
            "op": "simulate", "machine": "toy", "addresses": addresses,
        })
    assert resp.ok
    assert resp.result["simulated_time"] == float(direct.time)


def test_cached_answer_is_bit_identical():
    req = {
        "op": "compare", "machine": "toy",
        "pattern": {"kind": "zipf", "n": N, "alpha": 1.2},
    }
    with _service() as svc:
        first = svc.call(req)
        second = svc.call(req)
    assert first.ok and second.ok
    assert not first.cached
    assert second.cached
    assert second.result == first.result


def test_disk_cached_answer_is_bit_identical(isolated_cache):
    req = {
        "op": "simulate", "machine": "toy", "engine": "event",
        "pattern": {"kind": "multi_hotspot", "n": N, "n_hot": 4,
                    "hot_fraction": 0.5},
    }
    with PredictionService(disk_cache=True, flush_ms=1.0) as svc:
        first = svc.call(req)
    # A brand-new service (empty LRU) must answer from the on-disk memo.
    with PredictionService(disk_cache=True, flush_ms=1.0) as svc:
        second = svc.call(req)
        assert svc.stats().disk_hits == 1
    assert second.cached
    assert second.batch == 0
    assert second.result == first.result


def test_sweep_rows_match_direct_calls():
    machine = resolve_machine("toy")
    values = [4, 64, 1024]
    with _service() as svc:
        resp = svc.call({
            "op": "simulate", "machine": "toy", "engine": "tick",
            "pattern": {"kind": "hotspot", "n": N},
            "sweep": {"param": "k", "values": values},
        })
    assert resp.ok
    assert resp.result["param"] == "k"
    assert [row["value"] for row in resp.result["rows"]] == values
    for k, row in zip(values, resp.result["rows"]):
        addr = hotspot(n=N, k=k, space=1 << 24, seed=1995)
        direct = simulate_scatter_engine(machine, addr, None, engine="tick")
        assert row["simulated_time"] == float(direct.time)


def test_fused_sweep_flush_is_bit_identical():
    """A cycle-engine sweep flush rides the fused grid pass; forcing
    ``fuse=False`` must give byte-identical responses the slow way."""
    from repro.experiments import runner

    values = [4, 64, 1024]
    req = {
        "op": "simulate", "machine": "toy", "engine": "batch",
        "pattern": {"kind": "hotspot", "n": N},
        "sweep": {"param": "k", "values": values},
    }
    runner.reset_grid_stats()
    with _service() as svc:
        fused = svc.call(req)
    assert fused.ok
    # Evidence the sweep actually took the fused path.
    assert runner.grid_stats().fused_points >= len(values)
    with _service(fuse=False) as svc:
        unfused = svc.call(req)
    assert unfused.ok
    assert fused.result == unfused.result
    machine = resolve_machine("toy")
    for k, row in zip(values, fused.result["rows"]):
        addr = hotspot(n=N, k=k, space=1 << 24, seed=1995)
        direct = simulate_scatter_engine(machine, addr, None,
                                         engine="batch")
        assert row["simulated_time"] == float(direct.time)


def test_banksim_sweep_never_fused():
    """banksim only agrees with the cycle engines on restricted
    machines, so its sweeps must stay on the per-point path."""
    from repro.experiments import runner

    runner.reset_grid_stats()
    with _service() as svc:
        resp = svc.call({
            "op": "simulate", "machine": "toy",
            "pattern": {"kind": "hotspot", "n": N},
            "sweep": {"param": "k", "values": [4, 64, 1024]},
        })
    assert resp.ok
    assert runner.grid_stats().fused_points == 0


def test_json_round_trip_preserves_values():
    import json

    with _service() as svc:
        resp = svc.call({
            "op": "compare", "machine": "c90",
            "pattern": {"kind": "uniform", "n": N},
        })
    decoded = json.loads(resp.to_json())
    assert decoded["result"] == resp.result
    assert decoded["status"] == "ok" and decoded["code"] == 200


def test_evaluate_point_is_the_single_source_of_truth():
    """The service's point function itself must agree with the library
    (guards against evaluate_point drifting from the entry points)."""
    machine = resolve_machine("sx4")
    addr = hotspot(n=N, k=16, space=1 << 24, seed=3)
    out = evaluate_point("compare", machine, addr, "banksim",
                         "h2", 11)
    mapping = resolve_bank_map("h2", 11)
    direct = simulate_scatter_engine(machine, addr, mapping,
                                     engine="banksim")
    assert out["simulated_time"] == float(direct.time)
    assert out["dxbsp_time"] == float(
        predict_scatter_dxbsp(machine.params(), addr, mapping)
    )
