"""Shared fixtures for the serving tests: cache isolation."""

import pytest


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the runner's on-disk memo at a per-test directory so
    serving tests neither see nor pollute a shared cache."""
    cache_dir = tmp_path / "memo-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    return cache_dir
