"""Sharded router tests: bit-identity across shard counts, the shared
hot tier, request-key routing, worker-death rebalance, drain semantics.

The load-bearing property is the first one: a :class:`ShardRouter` with
any worker count answers a mixed request stream *byte-identically* to
one in-process :class:`PredictionService` (volatile serving metadata —
``latency_ms``, ``batch``, ``cached`` — excluded, exactly as the
single-process bit-identity tests already treat LRU hits), and leaves
the same entries in the on-disk memo cache.
"""

import json
import time

import pytest

from repro.errors import ParameterError
from repro.serving import (
    PredictionService,
    RouterTicket,
    ServeRequest,
    ShardRouter,
    SharedHotTier,
    route_digest,
)
from repro.serving.metrics import router_manifest

N = 1024

#: A deliberately mixed stream: every op, patterns and explicit
#: addresses, a sweep, duplicates, and an invalid request.
REQUESTS = [
    {"op": "predict", "machine": "toy",
     "pattern": {"kind": "hotspot", "n": N, "k": 16}},
    {"op": "compare", "machine": "toy",
     "pattern": {"kind": "uniform", "n": N}},
    {"op": "simulate", "machine": "toy", "engine": "event",
     "pattern": {"kind": "stride", "n": N, "stride": 8}},
    {"op": "predict", "machine": "j90",
     "pattern": {"kind": "zipf", "n": N, "alpha": 1.5}},
    {"op": "predict", "machine": "toy",
     "addresses": list(range(64)) * 4, "request_id": "explicit"},
    {"op": "predict", "machine": "toy",
     "pattern": {"kind": "hotspot", "n": N, "k": 16},
     "request_id": "duplicate-of-first"},
    {"op": "compare", "machine": "toy",
     "pattern": {"kind": "hotspot", "n": N, "k": 4},
     "sweep": {"param": "k", "values": [4, 16]}},
    {"op": "transmogrify"},                       # answers 400
]

#: Serving metadata that legitimately differs between deployments.
VOLATILE = ("latency_ms", "batch", "cached")


def _canon(responses):
    out = []
    for resp in responses:
        d = resp.to_dict()
        for key in VOLATILE:
            d.pop(key)
        out.append(json.dumps(d, sort_keys=True))
    return out


def _service_kwargs():
    return dict(flush_ms=1.0, deadline_ms=None, disk_cache=False)


def _memo_names(cache_dir):
    if not cache_dir.is_dir():
        return set()
    return {p.name for p in cache_dir.rglob("*.pkl")}


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_router_matches_single_service(self, workers):
        with PredictionService(**_service_kwargs()) as svc:
            expected = _canon(svc.serve(REQUESTS, timeout=120))
        with ShardRouter(workers, **_service_kwargs()) as router:
            got = _canon(router.serve(REQUESTS, timeout=120))
        assert got == expected

    def test_hot_tier_replays_are_identical(self):
        """Second pass over the same stream is answered from the shared
        tier (router-side) yet byte-identical to the cold pass."""
        with ShardRouter(2, **_service_kwargs()) as router:
            cold = router.serve(REQUESTS, timeout=120)
            warm = router.serve(REQUESTS, timeout=120)
            stats = router.stats()
        assert _canon(warm) == _canon(cold)
        # every ok response of the second pass came from the hot tier
        ok = sum(1 for r in cold if r.ok)
        assert stats.hot_hits >= ok
        assert all(r.cached for r in warm if r.ok)

    def test_memo_cache_behavior_matches(self, tmp_path, monkeypatch):
        """Sharded and single-process serving leave the same set of
        on-disk memo entries for the same stream."""
        single_dir = tmp_path / "single"
        sharded_dir = tmp_path / "sharded"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(single_dir))
        with PredictionService(flush_ms=1.0, deadline_ms=None) as svc:
            svc.serve(REQUESTS, timeout=120)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(sharded_dir))
        with ShardRouter(2, flush_ms=1.0, deadline_ms=None) as router:
            router.serve(REQUESTS, timeout=120)
        assert _memo_names(single_dir) == _memo_names(sharded_dir)
        assert _memo_names(single_dir)   # the streams did hit the memo


class TestRouteDigest:
    BASE = {"op": "predict", "machine": "toy",
            "pattern": {"kind": "hotspot", "n": N, "k": 16}}

    def test_dict_and_dataclass_agree(self):
        req = ServeRequest(op="predict", machine="toy",
                           pattern={"kind": "hotspot", "n": N, "k": 16})
        assert route_digest(self.BASE) == route_digest(req)

    def test_envelope_fields_are_ignored(self):
        assert route_digest(self.BASE) == route_digest(
            {**self.BASE, "request_id": "r1", "deadline_ms": 5.0}
        )

    def test_result_fields_change_the_digest(self):
        base = route_digest(self.BASE)
        assert base != route_digest({**self.BASE, "machine": "j90"})
        assert base != route_digest(
            {**self.BASE, "pattern": {"kind": "hotspot", "n": N, "k": 4}}
        )
        assert base != route_digest({**self.BASE, "op": "compare"})

    def test_rejects_other_types(self):
        with pytest.raises(ParameterError):
            route_digest(["not", "a", "request"])


class TestSharedHotTier:
    def test_put_get_round_trip(self):
        tier = SharedHotTier(slots=8, slot_bytes=512)
        try:
            key = route_digest(TestRouteDigest.BASE)
            payload = {"status": "ok", "op": "predict", "engine": "x",
                       "machine": "toy", "result": {"v": 1.5}}
            assert tier.get(key) is None
            assert tier.put(key, payload)
            assert tier.get(key) == payload
            assert tier.stats()["hits"] == 1
            assert tier.stats()["misses"] == 1
        finally:
            tier.close()

    def test_oversize_payload_is_skipped(self):
        tier = SharedHotTier(slots=4, slot_bytes=64)
        try:
            key = b"k" * 16
            assert not tier.put(key, {"blob": "x" * 1024})
            assert tier.get(key) is None
            assert tier.stats()["skipped"] == 1
        finally:
            tier.close()

    def test_collision_overwrites(self):
        tier = SharedHotTier(slots=1, slot_bytes=512)
        try:
            tier.put(b"a" * 16, {"v": 1})
            tier.put(b"b" * 16, {"v": 2})     # same (only) slot
            assert tier.get(b"a" * 16) is None
            assert tier.get(b"b" * 16) == {"v": 2}
        finally:
            tier.close()

    def test_attach_sees_creator_writes(self):
        import multiprocessing

        lock = multiprocessing.get_context().Lock()
        tier = SharedHotTier(slots=8, slot_bytes=256, lock=lock)
        try:
            tier.put(b"c" * 16, {"v": 3})
            other = SharedHotTier.attach(tier.name, 8, 256, lock)
            assert other.get(b"c" * 16) == {"v": 3}
            other.close()
        finally:
            tier.close()

    def test_bad_geometry_rejected(self):
        with pytest.raises(ParameterError):
            SharedHotTier(slots=0)
        with pytest.raises(ParameterError):
            SharedHotTier(slot_bytes=0)


class TestRouterLifecycle:
    def test_bad_worker_count_rejected(self):
        with pytest.raises(ParameterError):
            ShardRouter(0)

    def test_submit_after_close_answers_closed_503(self):
        router = ShardRouter(2, **_service_kwargs())
        router.close()
        resp = router.call(REQUESTS[0], timeout=30)
        assert resp.status == "closed" and resp.code == 503
        assert router.stats().closed == 1
        router.close()   # idempotent

    def test_close_collects_shard_manifests(self):
        router = ShardRouter(2, **_service_kwargs())
        try:
            responses = router.serve(REQUESTS, timeout=120)
        finally:
            router.close()
        assert sum(1 for r in responses if r.ok) >= 6
        manifest = router_manifest(router)
        assert manifest["workers"] == 2
        assert len(manifest["shards"]) == 2
        assert sum(manifest["shard_routed"]) == manifest["routed"]
        # all forwarded work is accounted for by some shard
        assert sum(s["received"] for s in manifest["shards"]) \
            == manifest["routed"]

    def test_worker_death_rebalances_to_survivor(self):
        # hot tier off: the replay must actually exercise the re-route,
        # not be answered from shared memory
        router = ShardRouter(2, hot_tier_slots=0, **_service_kwargs())
        try:
            first = router.serve(REQUESTS[:4], timeout=120)
            assert all(r.ok for r in first)
            victim = router._procs[0]
            victim.terminate()
            victim.join(timeout=30)
            deadline = time.monotonic() + 30
            while router.live_workers() > 1:
                assert time.monotonic() < deadline, "EOF never noticed"
                time.sleep(0.02)
            # every request — including ones whose home shard died —
            # is still answered correctly by the survivor
            replay = router.serve(REQUESTS[:4], timeout=120)
            assert _canon(replay) == _canon(first)
            assert router.stats().rebalanced > 0
        finally:
            router.close()

    def test_dispatch_racing_close_still_resolves(self):
        """Regression: a submission that passed the admission check just
        before close() ran to completion used to land in ``_pending``
        with every reader already joined — nobody left to resolve it,
        so ``result()`` hung forever.  ``_dispatch`` now re-checks
        ``_closing`` under the lock and fails such tickets as closed."""
        router = ShardRouter(2, **_service_kwargs())
        router.close()
        request = dict(REQUESTS[0])
        ticket = RouterTicket(None)
        router._dispatch([(ticket, route_digest(request), request)])
        resp = ticket.result(timeout=30)
        assert resp.status == "closed" and resp.code == 503
        assert not router._pending

    def test_stranded_requests_count_rebalanced_once(self):
        """Regression: a stranded in-flight request used to bump
        ``rebalanced`` twice — once in bulk at worker exit, then again
        when its resubmission remapped past the dead home shard."""
        router = ShardRouter(2, hot_tier_slots=0, **_service_kwargs())
        try:
            request = next(
                req for req in (
                    {"op": "predict", "machine": "toy",
                     "pattern": {"kind": "hotspot", "n": N, "k": k}}
                    for k in range(2, 130)
                )
                if int.from_bytes(route_digest(req)[:8], "big") % 2 == 0
            )
            victim = router._procs[0]
            victim.terminate()
            victim.join(timeout=30)
            deadline = time.monotonic() + 30
            while router.live_workers() > 1:
                assert time.monotonic() < deadline, "EOF never noticed"
                time.sleep(0.02)
            # Plant one in-flight entry homed on the dead shard, then
            # replay the reader's exit path deterministically.
            ticket = RouterTicket(None)
            with router._lock:
                seq = next(router._seq)
                router._pending[seq] = \
                    (ticket, route_digest(request), request, 0)
            before = router.stats().rebalanced
            router._on_worker_exit(0)
            assert ticket.result(timeout=60).ok
            assert router.stats().rebalanced - before == 1
        finally:
            router.close()

    def test_duplicate_requests_share_one_shard(self):
        with ShardRouter(4, hot_tier_slots=0, **_service_kwargs()) \
                as router:
            dup = REQUESTS[0]
            router.serve([dict(dup) for _ in range(12)], timeout=120)
            routed = router.shard_routed()
        assert sum(1 for n in routed if n) == 1   # one home shard
        assert sum(routed) == 12
