"""PredictionService behaviour: admission control, shedding, deadlines,
failure answering, metrics counters and the manifest export.
"""

import json
import time

import pytest

from repro.errors import ParameterError
from repro.serving import (
    SERVING_MANIFEST_SCHEMA,
    SERVING_SCHEMA_VERSION,
    PredictionService,
    ServingStats,
    metrics_table,
    percentile,
    serving_manifest,
    write_serving_manifest,
)

N = 1024

PREDICT = {"op": "predict", "machine": "toy",
           "pattern": {"kind": "hotspot", "n": N, "k": 32}}


def _distinct(i):
    return {"op": "predict", "machine": "toy",
            "pattern": {"kind": "hotspot", "n": N, "k": 2 ** (i % 10 + 1)}}


class TestAdmission:
    def test_full_queue_sheds_with_429(self):
        # flush_ms is huge, so admitted items hold their capacity in the
        # open bucket — the third distinct request must be shed.
        svc = PredictionService(max_queue=2, batch_size=100,
                                flush_ms=60_000.0, deadline_ms=None,
                                disk_cache=False)
        try:
            tickets = [svc.submit(_distinct(i)) for i in range(3)]
            shed = tickets[2].result(timeout=5.0)
            assert shed.status == "overloaded" and shed.code == 429
            assert "queue full" in shed.error
        finally:
            svc.close()
        # close() drained the open bucket: the admitted two still got
        # real answers.
        assert tickets[0].result(5.0).ok
        assert tickets[1].result(5.0).ok
        stats = svc.stats()
        assert stats.shed == 1
        assert stats.queue_high_water == 2

    def test_deadline_expiry_answers_504(self):
        with PredictionService(batch_size=100, flush_ms=50.0,
                               disk_cache=False) as svc:
            resp = svc.call({**_distinct(0), "deadline_ms": 0.001})
        assert resp.status == "deadline-exceeded" and resp.code == 504
        assert svc.stats().expired == 1

    def test_invalid_requests_answer_400(self):
        bad = [
            {"op": "transmogrify", "pattern": {"kind": "uniform", "n": N}},
            {"op": "predict"},                                   # no pattern
            {"op": "predict", "pattern": {"kind": "uniform", "n": N},
             "addresses": [1, 2, 3]},                            # both
            {"op": "predict", "pattern": {"kind": "uniform", "n": N},
             "frobnicate": 1},                                   # unknown field
            {"op": "predict", "machine": "cray-3",
             "pattern": {"kind": "uniform", "n": N}},            # bad machine
            {"op": "predict", "engine": "quantum",
             "pattern": {"kind": "uniform", "n": N}},            # bad engine
            {"op": "predict", "pattern": {"kind": "uniform", "n": N},
             "sweep": {"param": "k", "values": []}},             # empty sweep
        ]
        with PredictionService(disk_cache=False) as svc:
            responses = svc.serve(bad)
        assert all(r.status == "bad-request" and r.code == 400
                   for r in responses)
        assert all(r.error for r in responses)
        assert svc.stats().invalid == len(bad)

    def test_evaluation_failure_answers_500(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.experiments.runner.run_grid", boom)
        with PredictionService(flush_ms=1.0, disk_cache=False) as svc:
            resp = svc.call(_distinct(0))
        assert resp.status == "error" and resp.code == 500
        assert "engine exploded" in resp.error
        assert svc.stats().failed == 1

    def test_submit_after_close_answers_closed_503(self):
        svc = PredictionService(disk_cache=False)
        svc.close()
        resp = svc.submit(_distinct(0)).result(timeout=5.0)
        # Shutdown is its own status (503), not load shedding (429):
        # a drained service was never "overloaded".
        assert resp.status == "closed" and resp.code == 503
        svc.close()  # idempotent
        stats = svc.stats()
        assert stats.closed == 1 and stats.shed == 0

    def test_bad_max_queue_rejected(self):
        with pytest.raises(ParameterError):
            PredictionService(max_queue=0)


class TestResponses:
    def test_request_id_echoed(self):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            resp = svc.call({**PREDICT, "request_id": "abc-123"})
        assert resp.ok and resp.request_id == "abc-123"

    def test_latency_recorded(self):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            resp = svc.call(PREDICT)
            lat = svc.latencies_ms()
        assert resp.latency_ms > 0.0
        assert len(lat) == 1 and lat[0] == resp.latency_ms

    def test_machine_override_dict(self):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            resp = svc.call({
                "op": "predict",
                "machine": {"base": "toy", "d": 12.0},
                "pattern": {"kind": "uniform", "n": N},
            })
        assert resp.ok


class TestMetrics:
    def test_counters_add_up(self):
        reqs = [_distinct(i) for i in range(4)] + [dict(PREDICT), dict(PREDICT)]
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            responses = svc.serve(reqs)
            stats = svc.stats()
        assert all(r.ok for r in responses)
        assert stats.received == len(reqs)
        # Every request resolved one way: served from a flush, or from
        # the LRU after the first PREDICT evaluation landed.
        assert stats.served == len(reqs)
        assert stats.batched_requests + stats.lru_hits == len(reqs)
        assert stats.evaluations <= stats.batched_requests
        assert 0.0 <= stats.cache_hit_ratio <= 1.0

    def test_serving_stats_derived_figures(self):
        stats = ServingStats(batches=2, batched_requests=10,
                             lru_hits=5, disk_hits=5)
        assert stats.mean_occupancy == 5.0
        assert stats.cache_hit_ratio == 0.5
        assert ServingStats().mean_occupancy == 0.0
        assert ServingStats().cache_hit_ratio == 0.0
        assert ServingStats().as_dict()["received"] == 0

    def test_manifest_schema_checked(self):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            svc.call(PREDICT)
            data = serving_manifest(svc)
        assert set(data) == set(SERVING_MANIFEST_SCHEMA)
        assert data["schema_version"] == SERVING_SCHEMA_VERSION
        assert data["received"] == 1 and data["served"] == 1
        assert data["p95_ms"] >= data["p50_ms"] >= 0.0
        assert data["uptime_seconds"] > 0.0

    def test_manifest_rejects_drift(self):
        data = {"schema_version": SERVING_SCHEMA_VERSION}
        from repro.experiments.manifest import validate_manifest
        with pytest.raises(ParameterError, match="missing field"):
            validate_manifest(data, schema=SERVING_MANIFEST_SCHEMA,
                              expected_version=SERVING_SCHEMA_VERSION)

    def test_write_manifest_round_trips(self, tmp_path):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            svc.call(PREDICT)
            path = write_serving_manifest(svc, tmp_path / "m" / "serve.json")
        data = json.loads(path.read_text())
        assert data["served"] == 1
        assert data["service"] == "repro.serving.PredictionService"

    def test_metrics_table_renders(self):
        with PredictionService(disk_cache=False, flush_ms=1.0) as svc:
            svc.call(PREDICT)
            table = metrics_table(svc)
        assert "serving metrics" in table
        assert "served" in table and "mean_occupancy" in table


class TestPercentile:
    def test_matches_numpy_default_method(self):
        import numpy as np

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0.0, 25.0, 50.0, 90.0, 95.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_edge_cases(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([7.0], 50.0) == 7.0
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


def test_uptime_and_queue_depth():
    with PredictionService(disk_cache=False) as svc:
        time.sleep(0.01)
        assert svc.uptime_seconds() > 0.0
        assert svc.queue_depth() == 0
