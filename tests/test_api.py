"""API-surface contract: every public name resolves, is exported
coherently, and carries documentation (deliverable (e): doc comments on
every public item)."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.simulator",
    "repro.mapping",
    "repro.emulation",
    "repro.algorithms",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_all_resolves(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"
    for public in getattr(mod, "__all__", []):
        assert hasattr(mod, public), f"{name}.__all__ lists missing {public}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    for public in getattr(mod, "__all__", []):
        obj = getattr(mod, public)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert inspect.getdoc(obj), f"{name}.{public} lacks a docstring"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_methods_documented(name):
    # Deliverable (e): doc comments on every public item, methods
    # included.
    mod = importlib.import_module(name)
    for public in getattr(mod, "__all__", []):
        obj = getattr(mod, public)
        if not inspect.isclass(obj):
            continue
        for mname, meth in vars(obj).items():
            if mname.startswith("_"):
                continue
            if callable(meth) or isinstance(meth, property):
                target = meth.fget if isinstance(meth, property) else meth
                assert inspect.getdoc(target), \
                    f"{name}.{public}.{mname} lacks a docstring"


def test_top_level_exports():
    for public in repro.__all__:
        assert hasattr(repro, public)
    assert repro.__version__


def test_public_dataclasses_are_frozen_where_expected():
    # Value-object types must be immutable: they are shared across
    # experiments and caches.
    from repro.core import BSPParams, DXBSPParams, PatternStats, Superstep
    from repro.simulator import MachineConfig, SimResult

    for cls in (BSPParams, DXBSPParams, PatternStats, Superstep,
                MachineConfig, SimResult):
        assert cls.__dataclass_params__.frozen, cls.__name__


def test_experiment_registry_contract():
    from repro.experiments import REGISTRY

    for key, mod in REGISTRY.items():
        assert hasattr(mod, "run") or hasattr(mod, "run_vs_nhot"), key
        assert hasattr(mod, "main"), key
        assert mod.__doc__, key


def test_readme_quickstart_executes():
    # The exact snippet from README.md must keep working.
    from repro.analysis import compare_scatter
    from repro.core import crossover_contention
    from repro.simulator import CRAY_J90
    from repro.workloads import hotspot

    addr = hotspot(n=64 * 1024, k=4096, space=1 << 24, seed=0)
    cmp = compare_scatter(CRAY_J90, addr)
    assert cmp.bsp_time == 8192
    assert cmp.dxbsp_time == pytest.approx(59094, abs=200)
    assert cmp.simulated_time == pytest.approx(cmp.dxbsp_time, rel=0.02)
    assert crossover_contention(CRAY_J90.params(), 64 * 1024) == \
        pytest.approx(585.14, abs=0.01)
